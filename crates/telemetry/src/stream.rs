//! Out-of-band telemetry fan-in (paper Section 2, Figure 3).
//!
//! Summit's BMCs push metric changes over the out-of-band management
//! network through a websocket-based 288:1 fan-in into the monitoring
//! cluster, reaching the point of analysis with an average 4.1-second
//! delay at a 460k metrics/sec ingest rate. This module models that
//! path without any dedicated threads: many producers (node BMC
//! emitters) share one collector that timestamps frames at ingest,
//! tracks rate/delay statistics, and forwards each frame to a sink.
//! Batch fan-in parallelises the producer side through the
//! deterministic [`rayon`] facade and sorts arrivals into a canonical
//! ingest order, so replays are bit-identical at every thread count.

use crate::ingest::IngestHealth;
use crate::records::NodeFrame;
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The paper's maximum propagation delay (s): payloads reach the
/// aggregation point "after an average 2.5-second delay (max. 5
/// seconds)". The default ingest lateness horizon equals this bound.
pub const MAX_PROPAGATION_DELAY_S: f64 = 5.0;

/// Propagation-delay model: a deterministic hash of (node, sample-time)
/// uniform in `[0, MAX_PROPAGATION_DELAY_S)`, so replays are exact and
/// the mean matches the paper's 2.5 s.
pub fn propagation_delay_s(node: u32, t_sample: f64) -> f64 {
    let h = mix64(
        (node as u64).wrapping_mul(0x9e3779b97f4a7c15)
            ^ (t_sample.to_bits()).wrapping_mul(0xbf58476d1ce4e5b9),
    );
    unit_f64(h) * MAX_PROPAGATION_DELAY_S
}

/// splitmix64 finalizer.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    h
}

/// Maps a hash to a uniform f64 in `[0, 1)`.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Ingest-side statistics, matching the rates the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Frames received.
    pub frames: u64,
    /// Individual metric readings received (frames x catalog size).
    pub metrics: u64,
    /// Sum of per-frame propagation delays (s).
    pub total_delay_s: f64,
    /// Maximum observed delay (s).
    pub max_delay_s: f64,
    /// Earliest and latest sample timestamps seen.
    pub t_first: f64,
    /// Latest sample timestamp seen.
    pub t_last: f64,
    /// Fault-tolerance counters from the downstream coarsening path
    /// (accepted / reordered / duplicate / late-dropped / gap windows).
    pub health: IngestHealth,
}

impl IngestStats {
    /// Mean propagation delay (s).
    pub fn mean_delay_s(&self) -> f64 {
        if self.frames == 0 {
            f64::NAN
        } else {
            self.total_delay_s / self.frames as f64
        }
    }

    /// Metrics ingested per second of covered sample time.
    ///
    /// The covered span is floored at one 1 Hz sample period, so a
    /// single-frame stream (span 0) reports its per-second payload
    /// instead of NaN; only an empty stream is NaN.
    pub fn metrics_per_second(&self) -> f64 {
        if self.frames == 0 {
            return f64::NAN;
        }
        let span = (self.t_last - self.t_first).max(1.0);
        self.metrics as f64 / span
    }

    /// Folds one delivered frame into the statistics.
    pub fn observe(&mut self, frame: &NodeFrame) {
        if self.frames == 0 {
            self.t_first = frame.t_sample;
            self.t_last = frame.t_sample;
        } else {
            self.t_first = self.t_first.min(frame.t_sample);
            self.t_last = self.t_last.max(frame.t_sample);
        }
        self.frames += 1;
        self.metrics += frame.values.len() as u64;
        let d = frame.delay();
        self.total_delay_s += d;
        if d > self.max_delay_s {
            self.max_delay_s = d;
        }
    }

    /// Folds another accumulator into this one. Counters and extremes
    /// are order-independent; the float delay sum is associated as
    /// `(…(node₀ + node₁) + …)`, so any two consumers that accumulate
    /// per node and merge in node-index order — the batch replay and
    /// the streaming consumer both do — agree to the bit. Health
    /// counters merge unconditionally; the frame-derived fields only
    /// when the other side actually saw frames.
    pub fn merge(&mut self, other: &IngestStats) {
        self.health.merge(&other.health);
        if other.frames == 0 {
            return;
        }
        if self.frames == 0 {
            self.t_first = other.t_first;
            self.t_last = other.t_last;
        } else {
            self.t_first = self.t_first.min(other.t_first);
            self.t_last = self.t_last.max(other.t_last);
        }
        self.frames += other.frames;
        self.metrics += other.metrics;
        self.total_delay_s += other.total_delay_s;
        if other.max_delay_s > self.max_delay_s {
            self.max_delay_s = other.max_delay_s;
        }
    }

    /// Publishes the accumulated statistics into the current
    /// [`summit_obs`] registry. The struct remains the in-band API; the
    /// registry carries the same values as `summit_telemetry_ingest_*`
    /// counters (deterministic) and gauges (delay timings) so every
    /// sink — Prometheus exposition, `BENCH_obs.json`, the run summary
    /// line — reads one source of truth.
    pub fn publish_obs(&self) {
        let r = summit_obs::current();
        r.counter("summit_telemetry_ingest_frames_total")
            .inc_by(self.frames);
        r.counter("summit_telemetry_ingest_metrics_total")
            .inc_by(self.metrics);
        r.counter("summit_telemetry_ingest_reordered_total")
            .inc_by(self.health.reordered);
        r.counter("summit_telemetry_ingest_duplicates_total")
            .inc_by(self.health.duplicates);
        r.counter("summit_telemetry_ingest_late_dropped_total")
            .inc_by(self.health.late_dropped);
        r.counter("summit_telemetry_ingest_gap_windows_total")
            .inc_by(self.health.gap_windows);
        r.gauge("summit_telemetry_ingest_mean_delay_seconds")
            .set(self.mean_delay_s());
        r.gauge("summit_telemetry_ingest_max_delay_seconds")
            .set(self.max_delay_s);
        r.gauge("summit_telemetry_ingest_metrics_per_second")
            .set(self.metrics_per_second());
    }
}

/// Delivery-fault probabilities for the simulated fan-in.
///
/// Faults are mutually exclusive per frame (a single uniform draw picks
/// at most one class), so the injected counts account exactly for every
/// affected frame. The draw is a deterministic hash of
/// `(seed, node, t_sample)` — replays are exact without any RNG state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a frame is lost in flight.
    pub drop_p: f64,
    /// Probability a frame is delivered twice (same sample timestamp).
    pub duplicate_p: f64,
    /// Probability a frame suffers extra delay beyond the propagation
    /// model, uniform in `(0, max_extra_delay_s]` — delays past the
    /// lateness horizon become late drops downstream.
    pub delay_p: f64,
    /// Probability a delivered frame is swapped with its predecessor in
    /// arrival order (local reordering the delay model alone misses).
    pub reorder_p: f64,
    /// Upper bound of injected extra delay (s).
    pub max_extra_delay_s: f64,
    /// Seed mixed into every fault draw.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_p: 0.0,
            duplicate_p: 0.0,
            delay_p: 0.0,
            reorder_p: 0.0,
            max_extra_delay_s: 2.0 * MAX_PROPAGATION_DELAY_S,
            seed: 0x5EED,
        }
    }
}

impl FaultConfig {
    /// A mildly lossy fabric: ~1% of each fault class.
    pub fn light(seed: u64) -> Self {
        Self {
            drop_p: 0.01,
            duplicate_p: 0.01,
            delay_p: 0.01,
            reorder_p: 0.01,
            seed,
            ..Self::default()
        }
    }

    fn draw(&self, node: u32, t_sample: f64, salt: u64) -> f64 {
        let h = mix64(
            self.seed
                .wrapping_mul(0xd1342543de82ef95)
                .wrapping_add(salt)
                ^ (node as u64).wrapping_mul(0x9e3779b97f4a7c15)
                ^ t_sample.to_bits().wrapping_mul(0xbf58476d1ce4e5b9),
        );
        unit_f64(h)
    }

    /// Deterministic per-frame fate: a pure hash of `(seed, node,
    /// t_sample)`, independent of arrival and processing order, so the
    /// batch and streaming delivery paths classify every frame
    /// identically. A duplicate's copy shares the original's sample
    /// timestamp and therefore its fate draws.
    pub fn fate(&self, node: u32, t_sample: f64) -> FrameFate {
        let u = self.draw(node, t_sample, 1);
        if u < self.drop_p {
            return FrameFate::Drop;
        }
        if u < self.drop_p + self.duplicate_p {
            return FrameFate::Duplicate;
        }
        if u < self.drop_p + self.duplicate_p + self.delay_p {
            return FrameFate::Delay {
                extra_s: self.draw(node, t_sample, 2) * self.max_extra_delay_s,
            };
        }
        FrameFate::Deliver
    }

    /// Whether a delivered frame draws an adjacent arrival-order swap
    /// with its predecessor. Same hash family as [`FaultConfig::fate`]
    /// (salt 3), so both delivery paths agree per frame.
    pub fn draws_reorder(&self, node: u32, t_sample: f64) -> bool {
        self.draw(node, t_sample, 3) < self.reorder_p
    }
}

/// Fate a single frame draws from the faulty fabric (mutually
/// exclusive; a single uniform draw picks at most one class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameFate {
    /// Delivered at its modelled ingest time.
    Deliver,
    /// Lost in flight.
    Drop,
    /// Delivered twice: the copy trails the original by 0.25 s.
    Duplicate,
    /// Delivered with extra delay beyond the propagation model.
    Delay {
        /// Injected extra delay (s), itself a deterministic draw.
        extra_s: f64,
    },
}

/// Exact counts of the faults a [`FaultInjector`] introduced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFaults {
    /// Frames dropped in flight.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames given extra delay beyond the propagation model.
    pub delayed: u64,
    /// Adjacent arrival-order swaps applied.
    pub reordered: u64,
}

impl InjectedFaults {
    /// Total fault events injected.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.reordered
    }

    /// Folds another count set into this one.
    pub fn merge(&mut self, other: &InjectedFaults) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.reordered += other.reordered;
    }
}

/// Injects delivery faults into per-node frame batches, modelling the
/// lossy fabric between the BMCs and the point of analysis.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    counts: InjectedFaults,
}

impl FaultInjector {
    /// Creates an injector for the given fault profile.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            counts: InjectedFaults::default(),
        }
    }

    /// The active fault profile.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Counts of every fault injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.counts
    }

    /// Delivers one node's frame batch through the faulty fabric:
    /// stamps arrival times from the propagation-delay model, applies
    /// drop / duplicate / extra-delay faults, and returns the surviving
    /// frames in *arrival* order (the order the fan-in hands downstream),
    /// with any local reorder swaps applied on top. Every decision is a
    /// pure [`FaultConfig::fate`] / [`FaultConfig::draws_reorder`] draw,
    /// the same hashes the incremental streaming stage consults.
    pub fn deliver(&mut self, frames: Vec<NodeFrame>) -> Vec<NodeFrame> {
        let _obs = summit_obs::span("summit_telemetry_deliver");
        summit_obs::histogram("summit_telemetry_deliver_batch_frames").observe(frames.len() as f64);
        let cfg = self.config;
        let mut arrivals: Vec<(f64, NodeFrame)> = Vec::with_capacity(frames.len());
        for mut frame in frames {
            let node = frame.node.0;
            let t = frame.t_sample;
            frame.t_ingest = t + propagation_delay_s(node, t);
            match cfg.fate(node, t) {
                FrameFate::Drop => {
                    self.counts.dropped += 1;
                    continue;
                }
                FrameFate::Duplicate => {
                    self.counts.duplicated += 1;
                    // The copy trails the original by a fraction of a second.
                    arrivals.push((frame.t_ingest + 0.25, frame.clone()));
                    arrivals.push((frame.t_ingest, frame));
                    continue;
                }
                FrameFate::Delay { extra_s } => {
                    self.counts.delayed += 1;
                    frame.t_ingest += extra_s;
                    arrivals.push((frame.t_ingest, frame));
                }
                FrameFate::Deliver => arrivals.push((frame.t_ingest, frame)),
            }
        }
        arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut out: Vec<NodeFrame> = arrivals.into_iter().map(|(_, f)| f).collect();
        for i in 1..out.len() {
            if cfg.draws_reorder(out[i].node.0, out[i].t_sample) {
                out.swap(i - 1, i);
                self.counts.reordered += 1;
            }
        }
        out
    }
}

/// Shared state behind a collector: statistics plus the consumer sink.
struct CollectorShared {
    stats: IngestStats,
    sink: Box<dyn FnMut(NodeFrame) + Send>,
    open: bool,
}

/// Handle used by producers (BMC emitters) to push frames into the fan-in.
#[derive(Clone)]
pub struct FrameSender {
    shared: Arc<Mutex<CollectorShared>>,
}

impl FrameSender {
    /// Sends a frame, stamping its ingest time from the delay model.
    /// The frame is observed and forwarded to the sink synchronously.
    /// Returns `false` if the collector has shut down.
    pub fn send(&self, mut frame: NodeFrame) -> bool {
        frame.t_ingest = frame.t_sample + propagation_delay_s(frame.node.0, frame.t_sample);
        let mut shared = self.shared.lock();
        if !shared.open {
            return false;
        }
        shared.stats.observe(&frame);
        (shared.sink)(frame);
        true
    }
}

/// The fan-in collector: frames pushed through any [`FrameSender`] are
/// observed into the ingest statistics and forwarded to the supplied
/// sink under one lock — no dedicated thread, no channel, no shutdown
/// race. Producers see `send` fail once [`Collector::join`] closes the
/// intake.
pub struct Collector {
    shared: Arc<Mutex<CollectorShared>>,
}

impl Collector {
    /// Opens a collector. `sink` is invoked for every frame, on
    /// whichever caller pushed it.
    pub fn start<F>(sink: F) -> (FrameSender, Collector)
    where
        F: FnMut(NodeFrame) + Send + 'static,
    {
        let shared = Arc::new(Mutex::new(CollectorShared {
            stats: IngestStats::default(),
            sink: Box::new(sink),
            open: true,
        }));
        (
            FrameSender {
                shared: Arc::clone(&shared),
            },
            Collector { shared },
        )
    }

    /// Snapshot of the ingest statistics.
    pub fn stats(&self) -> IngestStats {
        self.shared.lock().stats
    }

    /// Closes the intake (subsequent `send` calls return `false`) and
    /// returns the final statistics.
    pub fn join(self) -> IngestStats {
        let mut shared = self.shared.lock();
        shared.open = false;
        shared.stats
    }
}

/// Canonical arrival order: ingest time, ties broken by node then
/// sample time. Total for the frames one fan-in produces, so the sort
/// below is a permutation fixed by frame content alone.
fn arrival_order(a: &NodeFrame, b: &NodeFrame) -> std::cmp::Ordering {
    a.t_ingest
        .total_cmp(&b.t_ingest)
        .then(a.node.0.cmp(&b.node.0))
        .then(a.t_sample.total_cmp(&b.t_sample))
}

/// Runs a multi-producer fan-in over pre-generated per-node frame
/// batches: the batches are sharded round-robin across `producers`
/// logical producers (mimicking the 288:1 BMC fan-in) and stamped in
/// parallel through the deterministic [`rayon`] facade, then sorted
/// into the canonical arrival order and folded into the ingest
/// statistics sequentially. Returns the collected frames (ingest
/// order) and final statistics; both are bit-identical at every
/// thread count. Used by the Table 2 ingest benchmark.
pub fn fan_in_batches(
    frames_by_node: Vec<Vec<NodeFrame>>,
    producers: usize,
) -> (Vec<NodeFrame>, IngestStats) {
    let producers = producers.max(1); // zero producers degrades to one
    let shards: Vec<Vec<Vec<NodeFrame>>> = {
        let mut shards: Vec<Vec<Vec<NodeFrame>>> = (0..producers).map(|_| Vec::new()).collect();
        for (i, batch) in frames_by_node.into_iter().enumerate() {
            shards[i % producers].push(batch);
        }
        shards
    };

    let mut frames: Vec<NodeFrame> = shards
        .into_par_iter()
        .flat_map_iter(|shard| {
            shard.into_iter().flatten().map(|mut frame| {
                frame.t_ingest = frame.t_sample + propagation_delay_s(frame.node.0, frame.t_sample);
                frame
            })
        })
        .collect();
    frames.sort_by(arrival_order);

    let mut stats = IngestStats::default();
    for frame in &frames {
        stats.observe(frame);
    }
    (frames, stats)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn delay_model_bounds_and_mean() {
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        let n = 10_000;
        for i in 0..n {
            let d = propagation_delay_s(i % 100, (i / 100) as f64);
            assert!((0.0..5.0).contains(&d), "delay {d} out of bounds");
            sum += d;
            max = max.max(d);
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 2.5).abs() < 0.1,
            "paper: average 2.5 s delay, got {mean}"
        );
        assert!(max < 5.0, "paper: max 5 s delay");
        assert!(max > 4.5, "uniform sampling should approach the bound");
    }

    #[test]
    fn delay_model_is_deterministic() {
        assert_eq!(
            propagation_delay_s(7, 1234.0),
            propagation_delay_s(7, 1234.0)
        );
        assert_ne!(
            propagation_delay_s(7, 1234.0),
            propagation_delay_s(8, 1234.0)
        );
    }

    #[test]
    fn collector_counts_everything() {
        let frames_by_node: Vec<Vec<NodeFrame>> = (0..16)
            .map(|n| {
                (0..50)
                    .map(|t| NodeFrame::empty(NodeId(n), t as f64))
                    .collect()
            })
            .collect();
        let (frames, stats) = fan_in_batches(frames_by_node, 4);
        assert_eq!(frames.len(), 16 * 50);
        assert_eq!(stats.frames, 800);
        assert_eq!(stats.metrics, 800 * crate::catalog::METRIC_COUNT as u64);
        assert!(stats.mean_delay_s() > 0.0 && stats.mean_delay_s() < 5.0);
        assert!(stats.max_delay_s < 5.0);
        assert_eq!(stats.t_first, 0.0);
        assert_eq!(stats.t_last, 49.0);
        // Canonical arrival order: ingest-time ascending.
        assert!(frames.windows(2).all(|w| w[0].t_ingest <= w[1].t_ingest));
    }

    #[test]
    fn fan_in_is_invariant_across_thread_counts() {
        let frames_by_node: Vec<Vec<NodeFrame>> = (0..8)
            .map(|n| {
                (0..40)
                    .map(|t| NodeFrame::empty(NodeId(n), t as f64))
                    .collect()
            })
            .collect();
        let fingerprint = |threads: Option<usize>| {
            let run = || fan_in_batches(frames_by_node.clone(), 4);
            let (frames, stats) = match threads {
                Some(n) => rayon::with_thread_count(n, run),
                None => run(),
            };
            let order: Vec<(u64, u32, u64)> = frames
                .iter()
                .map(|f| (f.t_ingest.to_bits(), f.node.0, f.t_sample.to_bits()))
                .collect();
            (order, stats.total_delay_s.to_bits(), stats.frames)
        };
        let one = fingerprint(Some(1));
        assert_eq!(one, fingerprint(Some(2)));
        assert_eq!(one, fingerprint(None));
    }

    #[test]
    fn ingest_rate_computation() {
        let mut stats = IngestStats::default();
        let mut f0 = NodeFrame::empty(NodeId(0), 0.0);
        f0.t_ingest = 2.0;
        let mut f1 = NodeFrame::empty(NodeId(0), 10.0);
        f1.t_ingest = 13.0;
        stats.observe(&f0);
        stats.observe(&f1);
        assert_eq!(stats.frames, 2);
        assert!((stats.mean_delay_s() - 2.5).abs() < 1e-9);
        assert_eq!(stats.max_delay_s, 3.0);
        let per_s = stats.metrics_per_second();
        assert!((per_s - (2.0 * crate::catalog::METRIC_COUNT as f64 / 10.0)).abs() < 1e-9);
    }

    #[test]
    fn join_closes_the_intake() {
        let (sender, collector) = Collector::start(|_frame| {});
        assert!(sender.send(NodeFrame::empty(NodeId(0), 0.0)));
        assert_eq!(collector.stats().frames, 1);
        let stats = collector.join();
        assert_eq!(stats.frames, 1);
        // The collector is gone: further sends are rejected.
        assert!(!sender.send(NodeFrame::empty(NodeId(0), 1.0)));
    }

    #[test]
    fn sink_sees_every_accepted_frame() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen_sink = Arc::clone(&seen);
        let (sender, collector) = Collector::start(move |frame| {
            seen_sink.lock().push(frame.t_sample);
        });
        for t in 0..5 {
            assert!(sender.send(NodeFrame::empty(NodeId(0), t as f64)));
        }
        let stats = collector.join();
        assert_eq!(stats.frames, 5);
        assert_eq!(*seen.lock(), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = IngestStats::default();
        assert!(s.mean_delay_s().is_nan());
        assert!(s.metrics_per_second().is_nan());
    }

    #[test]
    fn single_frame_rate_is_finite() {
        // Degenerate span == 0: the rate floors at a 1 s sample period
        // rather than reporting NaN for real ingested metrics.
        let mut stats = IngestStats::default();
        let mut f = NodeFrame::empty(NodeId(0), 42.0);
        f.t_ingest = 43.0;
        stats.observe(&f);
        let per_s = stats.metrics_per_second();
        assert!((per_s - crate::catalog::METRIC_COUNT as f64).abs() < 1e-9);
    }

    #[test]
    fn zero_producers_degrades_to_one() {
        let frames_by_node = vec![vec![NodeFrame::empty(NodeId(0), 0.0)]];
        let (frames, stats) = fan_in_batches(frames_by_node, 0);
        assert_eq!(frames.len(), 1);
        assert_eq!(stats.frames, 1);
    }

    fn batch(node: u32, n: usize) -> Vec<NodeFrame> {
        (0..n)
            .map(|t| NodeFrame::empty(NodeId(node), t as f64))
            .collect()
    }

    #[test]
    fn injector_is_deterministic_and_accounts_exactly() {
        let cfg = FaultConfig {
            drop_p: 0.1,
            duplicate_p: 0.1,
            delay_p: 0.1,
            reorder_p: 0.05,
            ..FaultConfig::default()
        };
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        let da = a.deliver(batch(3, 500));
        let db = b.deliver(batch(3, 500));
        assert_eq!(da.len(), db.len(), "same seed, same delivery");
        assert!(da
            .iter()
            .zip(&db)
            .all(|(x, y)| x.t_sample == y.t_sample && x.t_ingest == y.t_ingest));
        let f = a.injected();
        assert_eq!(
            da.len() as u64,
            500 - f.dropped + f.duplicated,
            "every frame accounted: survivors = offered - dropped + duplicated"
        );
        assert!(f.dropped > 0 && f.duplicated > 0 && f.delayed > 0);
    }

    #[test]
    fn clean_injector_preserves_arrival_order_only() {
        let mut inj = FaultInjector::new(FaultConfig::default());
        let delivered = inj.deliver(batch(0, 100));
        assert_eq!(delivered.len(), 100);
        assert_eq!(inj.injected(), InjectedFaults::default());
        assert!(delivered.windows(2).all(|w| w[0].t_ingest <= w[1].t_ingest));
        // Propagation delay alone already reorders some sample times.
        assert!(delivered.windows(2).any(|w| w[0].t_sample > w[1].t_sample));
    }

    #[test]
    fn merged_stats_account_exactly_and_are_reproducible() {
        // Merging per-node accumulators in node order is the canonical
        // association both the batch and streaming paths use: counters
        // and extremes match a flat sequential replay exactly, the
        // (order-sensitive) delay sum matches it numerically, and two
        // per-node merges agree to the bit.
        let batches: Vec<Vec<NodeFrame>> = (0..5u32)
            .map(|n| {
                (0..40)
                    .map(|t| {
                        let mut f = NodeFrame::empty(NodeId(n), t as f64);
                        f.t_ingest = f.t_sample + propagation_delay_s(n, f.t_sample);
                        f
                    })
                    .collect()
            })
            .collect();
        let mut sequential = IngestStats::default();
        for batch in &batches {
            for f in batch {
                sequential.observe(f);
            }
        }
        let per_node_merge = || {
            let mut merged = IngestStats::default();
            for batch in &batches {
                let mut per_node = IngestStats::default();
                for f in batch {
                    per_node.observe(f);
                }
                merged.merge(&per_node);
            }
            merged
        };
        let merged = per_node_merge();
        assert_eq!(merged.frames, sequential.frames);
        assert_eq!(merged.metrics, sequential.metrics);
        assert!((merged.total_delay_s - sequential.total_delay_s).abs() < 1e-9);
        assert_eq!(
            merged.max_delay_s.to_bits(),
            sequential.max_delay_s.to_bits()
        );
        assert_eq!(merged.t_first.to_bits(), sequential.t_first.to_bits());
        assert_eq!(merged.t_last.to_bits(), sequential.t_last.to_bits());
        let again = per_node_merge();
        assert_eq!(
            again.total_delay_s.to_bits(),
            merged.total_delay_s.to_bits()
        );
    }

    #[test]
    fn merge_with_empty_side_is_identity() {
        let mut stats = IngestStats::default();
        let mut f = NodeFrame::empty(NodeId(1), 3.0);
        f.t_ingest = 5.0;
        stats.observe(&f);
        let mut merged = IngestStats::default();
        merged.merge(&stats);
        assert_eq!(merged, stats);
        merged.merge(&IngestStats::default());
        assert_eq!(merged, stats);
    }

    #[test]
    fn fate_draws_match_batch_delivery_accounting() {
        // Summing pure per-frame fates reproduces the injector's
        // mutable accounting exactly.
        let cfg = FaultConfig {
            drop_p: 0.1,
            duplicate_p: 0.1,
            delay_p: 0.15,
            reorder_p: 0.0,
            ..FaultConfig::default()
        };
        let frames = batch(9, 800);
        let mut expect = InjectedFaults::default();
        for f in &frames {
            match cfg.fate(f.node.0, f.t_sample) {
                FrameFate::Drop => expect.dropped += 1,
                FrameFate::Duplicate => expect.duplicated += 1,
                FrameFate::Delay { .. } => expect.delayed += 1,
                FrameFate::Deliver => {}
            }
        }
        let mut inj = FaultInjector::new(cfg);
        inj.deliver(frames);
        assert_eq!(inj.injected(), expect);
    }

    #[test]
    fn different_seeds_inject_differently() {
        let mut a = FaultInjector::new(FaultConfig::light(1));
        let mut b = FaultInjector::new(FaultConfig::light(2));
        a.deliver(batch(0, 1000));
        b.deliver(batch(0, 1000));
        assert_ne!(a.injected(), b.injected());
        let mut merged = a.injected();
        merged.merge(&b.injected());
        assert_eq!(merged.total(), a.injected().total() + b.injected().total());
    }
}
