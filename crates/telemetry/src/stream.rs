//! Out-of-band telemetry fan-in (paper Section 2, Figure 3).
//!
//! Summit's BMCs push metric changes over the out-of-band management
//! network through a websocket-based 288:1 fan-in into the monitoring
//! cluster, reaching the point of analysis with an average 4.1-second
//! delay at a 460k metrics/sec ingest rate. This module models that
//! path with crossbeam channels: many producers (node BMC emitters)
//! fan into one collector that timestamps frames at ingest, tracks
//! rate/delay statistics, and hands ordered batches to a consumer.

use crate::records::NodeFrame;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Propagation-delay model: payloads are timestamped at the aggregation
/// point "after an average 2.5-second delay (max. 5 seconds)". The delay
/// is a deterministic hash of (node, sample-time) so replays are exact.
pub fn propagation_delay_s(node: u32, t_sample: f64) -> f64 {
    let mut h = (node as u64).wrapping_mul(0x9e3779b97f4a7c15)
        ^ (t_sample.to_bits()).wrapping_mul(0xbf58476d1ce4e5b9);
    // splitmix64 finalizer
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    // Uniform in [0, 5) seconds -> mean 2.5 s, max < 5 s.
    (h >> 11) as f64 / (1u64 << 53) as f64 * 5.0
}

/// Ingest-side statistics, matching the rates the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Frames received.
    pub frames: u64,
    /// Individual metric readings received (frames x catalog size).
    pub metrics: u64,
    /// Sum of per-frame propagation delays (s).
    pub total_delay_s: f64,
    /// Maximum observed delay (s).
    pub max_delay_s: f64,
    /// Earliest and latest sample timestamps seen.
    pub t_first: f64,
    /// Latest sample timestamp seen.
    pub t_last: f64,
}

impl IngestStats {
    /// Mean propagation delay (s).
    pub fn mean_delay_s(&self) -> f64 {
        if self.frames == 0 {
            f64::NAN
        } else {
            self.total_delay_s / self.frames as f64
        }
    }

    /// Metrics ingested per second of covered sample time.
    pub fn metrics_per_second(&self) -> f64 {
        let span = self.t_last - self.t_first;
        if span <= 0.0 {
            f64::NAN
        } else {
            self.metrics as f64 / span
        }
    }

    fn observe(&mut self, frame: &NodeFrame) {
        if self.frames == 0 {
            self.t_first = frame.t_sample;
            self.t_last = frame.t_sample;
        } else {
            self.t_first = self.t_first.min(frame.t_sample);
            self.t_last = self.t_last.max(frame.t_sample);
        }
        self.frames += 1;
        self.metrics += frame.values.len() as u64;
        let d = frame.delay();
        self.total_delay_s += d;
        if d > self.max_delay_s {
            self.max_delay_s = d;
        }
    }
}

/// Handle used by producers (BMC emitters) to push frames into the fan-in.
#[derive(Clone)]
pub struct FrameSender {
    tx: Sender<NodeFrame>,
}

impl FrameSender {
    /// Sends a frame, stamping its ingest time from the delay model.
    /// Returns `false` if the collector has shut down.
    pub fn send(&self, mut frame: NodeFrame) -> bool {
        frame.t_ingest = frame.t_sample + propagation_delay_s(frame.node.0, frame.t_sample);
        self.tx.send(frame).is_ok()
    }
}

/// The fan-in collector: consumes frames on a dedicated thread, updates
/// ingest statistics, and forwards each frame to the supplied sink.
pub struct Collector {
    stats: Arc<Mutex<IngestStats>>,
    handle: Option<JoinHandle<()>>,
}

impl Collector {
    /// Spawns a collector with a bounded channel of `capacity` frames.
    /// `sink` is invoked for every frame, on the collector thread.
    // A failed thread spawn is an unrecoverable infrastructure error;
    // the panic is intentional (tracked in xtask/panic_allowlist.txt).
    #[allow(clippy::expect_used)]
    pub fn spawn<F>(capacity: usize, mut sink: F) -> (FrameSender, Collector)
    where
        F: FnMut(NodeFrame) + Send + 'static,
    {
        let (tx, rx): (Sender<NodeFrame>, Receiver<NodeFrame>) = bounded(capacity);
        let stats = Arc::new(Mutex::new(IngestStats::default()));
        let stats_thread = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("telemetry-collector".into())
            .spawn(move || {
                for frame in rx {
                    stats_thread.lock().observe(&frame);
                    sink(frame);
                }
            })
            .expect("spawn collector thread");
        (
            FrameSender { tx },
            Collector {
                stats,
                handle: Some(handle),
            },
        )
    }

    /// Snapshot of the ingest statistics.
    pub fn stats(&self) -> IngestStats {
        *self.stats.lock()
    }

    /// Waits for all producers to disconnect and the queue to drain,
    /// returning the final statistics.
    ///
    /// # Panics
    /// Propagates a panic from the collector thread (intentional;
    /// tracked in xtask/panic_allowlist.txt).
    #[allow(clippy::expect_used)]
    pub fn join(mut self) -> IngestStats {
        if let Some(h) = self.handle.take() {
            h.join().expect("collector thread panicked");
        }
        let stats = *self.stats.lock();
        stats
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Runs a multi-producer fan-in over pre-generated per-node frame batches:
/// `producers` worker threads each push a shard of the batches, mimicking
/// the 288:1 BMC fan-in. Returns the collected frames (ingest order) and
/// final statistics. Used by the Table 2 ingest benchmark.
pub fn fan_in_batches(
    frames_by_node: Vec<Vec<NodeFrame>>,
    producers: usize,
    capacity: usize,
) -> (Vec<NodeFrame>, IngestStats) {
    assert!(producers > 0);
    let collected = Arc::new(Mutex::new(Vec::new()));
    let collected_sink = Arc::clone(&collected);
    let (sender, collector) = Collector::spawn(capacity, move |frame| {
        collected_sink.lock().push(frame);
    });

    let shards: Vec<Vec<Vec<NodeFrame>>> = {
        let mut shards: Vec<Vec<Vec<NodeFrame>>> = (0..producers).map(|_| Vec::new()).collect();
        for (i, batch) in frames_by_node.into_iter().enumerate() {
            shards[i % producers].push(batch);
        }
        shards
    };

    std::thread::scope(|scope| {
        for shard in shards {
            let sender = sender.clone();
            scope.spawn(move || {
                for batch in shard {
                    for frame in batch {
                        sender.send(frame);
                    }
                }
            });
        }
    });
    drop(sender); // disconnect producers so the collector drains and exits

    let stats = collector.join();
    // The collector thread has exited, so ours is the last Arc; clone
    // defensively if a straggling reference ever survives.
    let frames = match Arc::try_unwrap(collected) {
        Ok(m) => m.into_inner(),
        Err(arc) => arc.lock().clone(),
    };
    (frames, stats)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn delay_model_bounds_and_mean() {
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        let n = 10_000;
        for i in 0..n {
            let d = propagation_delay_s(i % 100, (i / 100) as f64);
            assert!((0.0..5.0).contains(&d), "delay {d} out of bounds");
            sum += d;
            max = max.max(d);
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 2.5).abs() < 0.1,
            "paper: average 2.5 s delay, got {mean}"
        );
        assert!(max < 5.0, "paper: max 5 s delay");
        assert!(max > 4.5, "uniform sampling should approach the bound");
    }

    #[test]
    fn delay_model_is_deterministic() {
        assert_eq!(
            propagation_delay_s(7, 1234.0),
            propagation_delay_s(7, 1234.0)
        );
        assert_ne!(
            propagation_delay_s(7, 1234.0),
            propagation_delay_s(8, 1234.0)
        );
    }

    #[test]
    fn collector_counts_everything() {
        let frames_by_node: Vec<Vec<NodeFrame>> = (0..16)
            .map(|n| {
                (0..50)
                    .map(|t| NodeFrame::empty(NodeId(n), t as f64))
                    .collect()
            })
            .collect();
        let (frames, stats) = fan_in_batches(frames_by_node, 4, 64);
        assert_eq!(frames.len(), 16 * 50);
        assert_eq!(stats.frames, 800);
        assert_eq!(stats.metrics, 800 * crate::catalog::METRIC_COUNT as u64);
        assert!(stats.mean_delay_s() > 0.0 && stats.mean_delay_s() < 5.0);
        assert!(stats.max_delay_s < 5.0);
        assert_eq!(stats.t_first, 0.0);
        assert_eq!(stats.t_last, 49.0);
    }

    #[test]
    fn ingest_rate_computation() {
        let mut stats = IngestStats::default();
        let mut f0 = NodeFrame::empty(NodeId(0), 0.0);
        f0.t_ingest = 2.0;
        let mut f1 = NodeFrame::empty(NodeId(0), 10.0);
        f1.t_ingest = 13.0;
        stats.observe(&f0);
        stats.observe(&f1);
        assert_eq!(stats.frames, 2);
        assert!((stats.mean_delay_s() - 2.5).abs() < 1e-9);
        assert_eq!(stats.max_delay_s, 3.0);
        let per_s = stats.metrics_per_second();
        assert!((per_s - (2.0 * crate::catalog::METRIC_COUNT as f64 / 10.0)).abs() < 1e-9);
    }

    #[test]
    fn clean_shutdown_after_senders_disconnect() {
        let (sender, collector) = Collector::spawn(4, |_frame| {});
        assert!(sender.send(NodeFrame::empty(NodeId(0), 0.0)));
        drop(sender); // disconnect => collector thread drains and exits
        let stats = collector.join();
        assert_eq!(stats.frames, 1);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = IngestStats::default();
        assert!(s.mean_delay_s().is_nan());
        assert!(s.metrics_per_second().is_nan());
    }
}
