//! Shared record types for the five raw data streams of the paper's
//! Table 2: per-node telemetry frames (a), central-energy-plant records
//! (b), job-scheduler allocation history (c, d) and GPU XID error events
//! (e). The simulator produces these; the pipeline and experiments consume
//! them.

use crate::catalog::METRIC_COUNT;
use crate::ids::{AllocationId, GpuSlot, NodeId};
use serde::{Deserialize, Serialize};

/// One 1 Hz telemetry frame from one node: a dense vector of all catalog
/// metrics sampled at `t_sample`, timestamped at the aggregation point at
/// `t_ingest` (the paper: payloads "timestamped later at the aggregation
/// point after an average 2.5-second delay (max. 5 seconds)").
///
/// The metric vector is an inline `[f32; METRIC_COUNT]`, not a boxed
/// slice: a frame is plain value data, so routing, fault delivery and
/// window buffering move it with a memcpy instead of a per-frame heap
/// allocation — the hot paths stay allocation-free in steady state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeFrame {
    /// Compute node identifier.
    pub node: NodeId,
    /// Seconds since epoch at which the sensors were read.
    pub t_sample: f64,
    /// Seconds since epoch at which the frame reached the aggregator.
    pub t_ingest: f64,
    /// Dense metric values in catalog order; NaN = missing sensor.
    pub values: [f32; METRIC_COUNT],
}

/// Quantizes a metric sample to the f32 width frames are stored at.
/// This is the single budgeted narrowing point (`lossy-cast`) for
/// frame values: every path that writes a measured value into f32
/// frame storage — row frames and the columnar [`crate::batch`] alike
/// — funnels through here, so the rounding policy lives in one place.
#[inline]
pub fn frame_value(value: f64) -> f32 {
    value as f32
}

impl NodeFrame {
    /// Creates a frame with all metrics missing.
    pub fn empty(node: NodeId, t_sample: f64) -> Self {
        Self {
            node,
            t_sample,
            t_ingest: t_sample,
            values: [f32::NAN; METRIC_COUNT],
        }
    }

    /// Value of a metric as f64 (NaN if missing).
    #[inline]
    pub fn get(&self, metric: crate::catalog::MetricId) -> f64 {
        self.values[metric.index()] as f64
    }

    /// Sets a metric value.
    #[inline]
    pub fn set(&mut self, metric: crate::catalog::MetricId, value: f64) {
        self.values[metric.index()] = frame_value(value);
    }

    /// Ingest delay in seconds.
    pub fn delay(&self) -> f64 {
        self.t_ingest - self.t_sample
    }
}

/// Science domains used for the per-domain job breakdowns (Figure 8) and
/// the failure-rate-by-project analysis (Figure 14). The list follows the
/// DOE Office of Science areas named in the paper plus the long-tail
/// domains visible in Figure 8's axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ScienceDomain {
    /// Materials science.
    Materials,
    /// Physics.
    Physics,
    /// Chemistry.
    Chemistry,
    /// Engineering.
    Engineering,
    /// Fusion energy.
    Fusion,
    /// Biophysics.
    Biophysics,
    /// Astrophysics.
    Astrophysics,
    /// Computer science.
    ComputerScience,
    /// Earth science.
    EarthScience,
    /// Nuclear physics.
    NuclearPhysics,
    /// High-energy physics.
    HighEnergyPhysics,
    /// Biology.
    Biology,
    /// Seismology.
    Seismology,
    /// Combustion.
    Combustion,
    /// Medical research.
    Medical,
    /// Artificial intelligence / machine learning.
    AiMl,
    /// Other / unclassified.
    Other,
}

impl ScienceDomain {
    /// All domains in display order.
    pub const ALL: [ScienceDomain; 17] = [
        ScienceDomain::Materials,
        ScienceDomain::Physics,
        ScienceDomain::Chemistry,
        ScienceDomain::Engineering,
        ScienceDomain::Fusion,
        ScienceDomain::Biophysics,
        ScienceDomain::Astrophysics,
        ScienceDomain::ComputerScience,
        ScienceDomain::EarthScience,
        ScienceDomain::NuclearPhysics,
        ScienceDomain::HighEnergyPhysics,
        ScienceDomain::Biology,
        ScienceDomain::Seismology,
        ScienceDomain::Combustion,
        ScienceDomain::Medical,
        ScienceDomain::AiMl,
        ScienceDomain::Other,
    ];

    /// Dense index matching the position in [`ScienceDomain::ALL`]. The
    /// exhaustive match makes index/`ALL` drift a compile error instead
    /// of a silent alias onto variant 0.
    pub fn index(self) -> usize {
        match self {
            ScienceDomain::Materials => 0,
            ScienceDomain::Physics => 1,
            ScienceDomain::Chemistry => 2,
            ScienceDomain::Engineering => 3,
            ScienceDomain::Fusion => 4,
            ScienceDomain::Biophysics => 5,
            ScienceDomain::Astrophysics => 6,
            ScienceDomain::ComputerScience => 7,
            ScienceDomain::EarthScience => 8,
            ScienceDomain::NuclearPhysics => 9,
            ScienceDomain::HighEnergyPhysics => 10,
            ScienceDomain::Biology => 11,
            ScienceDomain::Seismology => 12,
            ScienceDomain::Combustion => 13,
            ScienceDomain::Medical => 14,
            ScienceDomain::AiMl => 15,
            ScienceDomain::Other => 16,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScienceDomain::Materials => "Materials",
            ScienceDomain::Physics => "Physics",
            ScienceDomain::Chemistry => "Chemistry",
            ScienceDomain::Engineering => "Engineering",
            ScienceDomain::Fusion => "Fusion",
            ScienceDomain::Biophysics => "Biophysics",
            ScienceDomain::Astrophysics => "Astrophysics",
            ScienceDomain::ComputerScience => "Comp. Science",
            ScienceDomain::EarthScience => "Earth Science",
            ScienceDomain::NuclearPhysics => "Nuclear Physics",
            ScienceDomain::HighEnergyPhysics => "High Energy Physics",
            ScienceDomain::Biology => "Biology",
            ScienceDomain::Seismology => "Seismology",
            ScienceDomain::Combustion => "Combustion",
            ScienceDomain::Medical => "Medical",
            ScienceDomain::AiMl => "AI/ML",
            ScienceDomain::Other => "Other",
        }
    }
}

/// One completed job from the scheduler allocation history (Dataset C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Scheduler allocation identifier.
    pub allocation_id: AllocationId,
    /// Scheduling class 1..=5 by node count (paper Table 3).
    pub class: u8,
    /// Number of nodes allocated.
    pub node_count: u32,
    /// Project identifier (e.g. "MAT042").
    pub project: String,
    /// Science domain of the project.
    pub domain: ScienceDomain,
    /// Seconds since epoch.
    pub begin_time: f64,
    /// Seconds since epoch.
    pub end_time: f64,
}

impl JobRecord {
    /// Wall time in seconds.
    pub fn walltime_s(&self) -> f64 {
        self.end_time - self.begin_time
    }

    /// Node-hours consumed (the Figure 14 normalization denominator).
    pub fn node_hours(&self) -> f64 {
        self.node_count as f64 * self.walltime_s() / 3600.0
    }
}

/// Per-node allocation entry (Dataset D): which nodes a job ran on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeAllocation {
    /// Scheduler allocation identifier.
    pub allocation_id: AllocationId,
    /// Compute node identifier.
    pub node: NodeId,
    /// Start time (seconds since epoch).
    pub begin_time: f64,
    /// End time (seconds since epoch).
    pub end_time: f64,
}

/// GPU XID error taxonomy of the paper's Table 4, ordered as printed.
/// The double-ruler in the table separates types that can be associated
/// with user applications (`user_associated() == true`) from those that
/// cannot (hardware/driver failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum XidErrorKind {
    /// GPU memory page fault (XID 31).
    MemoryPageFault,
    /// Graphics engine exception (XID 13).
    GraphicsEngineException,
    /// GPU stopped processing (XID 45).
    StoppedProcessing,
    /// NVLink error (XID 74).
    NvlinkError,
    /// Page retirement event (XID 63).
    PageRetirementEvent,
    /// Page retirement or row-remap failure (XID 64).
    PageRetirementFailure,
    /// Double-bit ECC error (XID 48).
    DoubleBitError,
    /// Preemptive cleanup, due to previous errors (XID 43).
    PreemptiveCleanup,
    /// Internal micro-controller warning (XID 61).
    InternalMicrocontrollerWarning,
    /// Graphics engine fault during context switch (XID 69).
    GraphicsEngineFault,
    /// GPU has fallen off the bus (XID 79).
    FallenOffTheBus,
    /// Internal micro-controller halt (XID 62).
    InternalMicrocontrollerHalt,
    /// Driver firmware error (XID 38).
    DriverFirmwareError,
    /// Driver error handling a GPU exception (XID 12).
    DriverErrorHandlingException,
    /// Corrupted push buffer stream (XID 32).
    CorruptedPushBufferStream,
    /// Graphics engine class error (XID 68).
    GraphicsEngineClassError,
}

impl XidErrorKind {
    /// All sixteen kinds in Table 4 order.
    pub const ALL: [XidErrorKind; 16] = [
        XidErrorKind::MemoryPageFault,
        XidErrorKind::GraphicsEngineException,
        XidErrorKind::StoppedProcessing,
        XidErrorKind::NvlinkError,
        XidErrorKind::PageRetirementEvent,
        XidErrorKind::PageRetirementFailure,
        XidErrorKind::DoubleBitError,
        XidErrorKind::PreemptiveCleanup,
        XidErrorKind::InternalMicrocontrollerWarning,
        XidErrorKind::GraphicsEngineFault,
        XidErrorKind::FallenOffTheBus,
        XidErrorKind::InternalMicrocontrollerHalt,
        XidErrorKind::DriverFirmwareError,
        XidErrorKind::DriverErrorHandlingException,
        XidErrorKind::CorruptedPushBufferStream,
        XidErrorKind::GraphicsEngineClassError,
    ];

    /// Dense index in Table 4 order, matching the position in
    /// [`XidErrorKind::ALL`]. The exhaustive match makes index/`ALL`
    /// drift a compile error instead of a silent alias onto variant 0.
    pub fn index(self) -> usize {
        match self {
            XidErrorKind::MemoryPageFault => 0,
            XidErrorKind::GraphicsEngineException => 1,
            XidErrorKind::StoppedProcessing => 2,
            XidErrorKind::NvlinkError => 3,
            XidErrorKind::PageRetirementEvent => 4,
            XidErrorKind::PageRetirementFailure => 5,
            XidErrorKind::DoubleBitError => 6,
            XidErrorKind::PreemptiveCleanup => 7,
            XidErrorKind::InternalMicrocontrollerWarning => 8,
            XidErrorKind::GraphicsEngineFault => 9,
            XidErrorKind::FallenOffTheBus => 10,
            XidErrorKind::InternalMicrocontrollerHalt => 11,
            XidErrorKind::DriverFirmwareError => 12,
            XidErrorKind::DriverErrorHandlingException => 13,
            XidErrorKind::CorruptedPushBufferStream => 14,
            XidErrorKind::GraphicsEngineClassError => 15,
        }
    }

    /// Display name matching the paper's Table 4.
    pub fn name(self) -> &'static str {
        match self {
            XidErrorKind::MemoryPageFault => "Memory page fault",
            XidErrorKind::GraphicsEngineException => "Graphics engine exception",
            XidErrorKind::StoppedProcessing => "Stopped processing",
            XidErrorKind::NvlinkError => "NVLINK error",
            XidErrorKind::PageRetirementEvent => "Page retirement event",
            XidErrorKind::PageRetirementFailure => "Page retirement failure",
            XidErrorKind::DoubleBitError => "Double-bit error",
            XidErrorKind::PreemptiveCleanup => "Preemptive cleanup",
            XidErrorKind::InternalMicrocontrollerWarning => "Internal microcontroller warning",
            XidErrorKind::GraphicsEngineFault => "Graphics engine fault",
            XidErrorKind::FallenOffTheBus => "Fallen off the bus",
            XidErrorKind::InternalMicrocontrollerHalt => "Internal microcontroller halt",
            XidErrorKind::DriverFirmwareError => "Driver firmware error",
            XidErrorKind::DriverErrorHandlingException => "Driver error handling exception",
            XidErrorKind::CorruptedPushBufferStream => "Corrupted push buffer stream",
            XidErrorKind::GraphicsEngineClassError => "Graphics engine class error",
        }
    }

    /// True for error types the paper's Table 4 places above the
    /// double-ruler (associable with user applications).
    pub fn user_associated(self) -> bool {
        matches!(
            self,
            XidErrorKind::MemoryPageFault
                | XidErrorKind::GraphicsEngineException
                | XidErrorKind::StoppedProcessing
        )
    }
}

/// One GPU XID error event (Dataset E row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XidEvent {
    /// Event/error kind.
    pub kind: XidErrorKind,
    /// Compute node identifier.
    pub node: NodeId,
    /// GPU slot within the node (0..6).
    pub slot: GpuSlot,
    /// Seconds since epoch.
    pub time: f64,
    /// Job running on the node at event time, if any.
    pub allocation_id: Option<AllocationId>,
    /// GPU core temperature at the event (°C); NaN when telemetry was
    /// missing (the paper lost temperature data in spring 2020).
    pub gpu_core_temp: f64,
    /// Z-score of that temperature within the in-job GPU population at
    /// the event moment; NaN when unavailable.
    pub temp_zscore: f64,
}

/// One central-energy-plant record (Dataset B row, ~15 s cadence).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CepRecord {
    /// Seconds since epoch.
    pub time: f64,
    /// Medium-temperature-water supply temperature, °C.
    pub mtw_supply_c: f64,
    /// MTW return temperature, °C.
    pub mtw_return_c: f64,
    /// Cooling delivered by the evaporative towers, tons of refrigeration.
    pub tower_tons: f64,
    /// Cooling delivered by the trim chillers, tons of refrigeration.
    pub chiller_tons: f64,
    /// Outside wet-bulb temperature, °C.
    pub wet_bulb_c: f64,
    /// Total facility power (IT + cooling + losses), watts.
    pub facility_power_w: f64,
    /// IT equipment power, watts.
    pub it_power_w: f64,
}

impl CepRecord {
    /// Instantaneous PUE of this record.
    pub fn pue(&self) -> f64 {
        summit_analysis::pue::pue(self.facility_power_w, self.it_power_w)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::catalog;

    #[test]
    fn node_frame_roundtrip() {
        let mut f = NodeFrame::empty(NodeId(3), 100.0);
        assert!(f.get(catalog::input_power()).is_nan());
        f.set(catalog::input_power(), 1234.5);
        assert!((f.get(catalog::input_power()) - 1234.5).abs() < 0.01);
        f.t_ingest = 102.5;
        assert!((f.delay() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn job_record_derived_quantities() {
        let j = JobRecord {
            allocation_id: AllocationId(1),
            class: 1,
            node_count: 4608,
            project: "MAT001".into(),
            domain: ScienceDomain::Materials,
            begin_time: 0.0,
            end_time: 3600.0,
        };
        assert_eq!(j.walltime_s(), 3600.0);
        assert_eq!(j.node_hours(), 4608.0);
    }

    #[test]
    fn xid_taxonomy_complete() {
        assert_eq!(XidErrorKind::ALL.len(), 16);
        for (i, k) in XidErrorKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        // Exactly the three top-ruler types are user-associated.
        let user: Vec<_> = XidErrorKind::ALL
            .iter()
            .filter(|k| k.user_associated())
            .collect();
        assert_eq!(user.len(), 3);
    }

    #[test]
    fn science_domains_indexable() {
        for (i, d) in ScienceDomain::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
        assert_eq!(ScienceDomain::AiMl.name(), "AI/ML");
    }

    #[test]
    fn domain_indices_form_a_permutation() {
        // Every index in 0..ALL.len(), each exactly once — no aliasing.
        let mut seen = vec![false; ScienceDomain::ALL.len()];
        for d in ScienceDomain::ALL {
            let i = d.index();
            assert!(i < seen.len(), "{d:?} index {i} out of range");
            assert!(!seen[i], "{d:?} aliases index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn xid_indices_form_a_permutation() {
        let mut seen = vec![false; XidErrorKind::ALL.len()];
        for k in XidErrorKind::ALL {
            let i = k.index();
            assert!(i < seen.len(), "{k:?} index {i} out of range");
            assert!(!seen[i], "{k:?} aliases index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cep_record_pue() {
        let r = CepRecord {
            time: 0.0,
            mtw_supply_c: 21.0,
            mtw_return_c: 29.0,
            tower_tons: 1500.0,
            chiller_tons: 0.0,
            wet_bulb_c: 15.0,
            facility_power_w: 6.66e6,
            it_power_w: 6.0e6,
        };
        assert!((r.pue() - 1.11).abs() < 1e-9);
    }
}
