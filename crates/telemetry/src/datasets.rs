//! Derived thermal datasets (artifact appendix Datasets 8-11).
//!
//! The MTW operations room works from a "histogram-based component-wise
//! temperature distribution summary of the HPC platform (27,756 GPUs and
//! 9,252 CPUs)" cross-checked against cooling telemetrics (Section 2).
//! These rows reproduce that product: per 10-second window, the number of
//! reporting nodes, the hot-component list, temperature band counts, and
//! the co-registered cooling-plant record — cluster-level (Datasets 8/9)
//! and per-job (Datasets 10/11).

use crate::catalog;
use crate::ids::{AllocationId, GpuSlot, NodeId};
use crate::jobjoin::AllocationIndex;
use crate::records::CepRecord;
use crate::window::NodeWindow;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use summit_analysis::stats::Welford;

/// Temperature band edges (°C) for the operations histogram.
pub const BAND_EDGES_C: [f64; 4] = [30.0, 40.0, 50.0, 60.0];
/// Number of bands (below first edge, between edges, above last edge).
pub const BAND_COUNT: usize = BAND_EDGES_C.len() + 1;

/// Classifies a temperature into its band index `0..BAND_COUNT`.
pub fn band_of(temp_c: f64) -> Option<usize> {
    if !temp_c.is_finite() {
        return None;
    }
    Some(
        BAND_EDGES_C
            .iter()
            .position(|&edge| temp_c < edge)
            .unwrap_or(BAND_EDGES_C.len()),
    )
}

/// One thermal summary row (cluster-level = Dataset 8/9; add an
/// allocation id for the job-level Datasets 10/11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalRow {
    /// Start of the 10-second window (seconds since epoch).
    pub window_start: f64,
    /// Job context (None = cluster-level row).
    pub allocation_id: Option<AllocationId>,
    /// Nodes with at least one finite GPU temperature in the window.
    pub nodes_reporting: u32,
    /// GPUs counted per temperature band.
    pub gpu_band_counts: [u32; BAND_COUNT],
    /// GPUs above the hot threshold, as (node, slot) pairs.
    pub hot_gpus: Vec<(NodeId, GpuSlot)>,
    /// GPU core temperature statistics across the scope.
    pub gpu_core_mean: f64,
    /// Gpu core max.
    pub gpu_core_max: f64,
    /// CPU package temperature statistics across the scope.
    pub cpu_mean: f64,
    /// Cpu max.
    pub cpu_max: f64,
    /// Cooling-plant record co-registered to the window, if available.
    pub cep: Option<CepRecord>,
}

/// Threshold above which a GPU lands on the hot list (°C).
pub const HOT_GPU_THRESHOLD_C: f64 = 60.0;

#[derive(Default)]
struct ThermalAcc {
    nodes: u32,
    bands: [u32; BAND_COUNT],
    hot: Vec<(NodeId, GpuSlot)>,
    gpu: Welford,
    cpu: Welford,
}

impl ThermalAcc {
    fn add_window(&mut self, w: &NodeWindow) {
        let mut node_reported = false;
        for g in GpuSlot::ALL {
            let s = w.metric(catalog::gpu_core_temp(g));
            if s.count == 0 || !s.mean.is_finite() {
                continue;
            }
            node_reported = true;
            self.gpu.push(s.mean);
            if let Some(b) = band_of(s.mean) {
                self.bands[b] += 1;
            }
            if s.max >= HOT_GPU_THRESHOLD_C {
                self.hot.push((w.node, g));
            }
        }
        for sck in crate::ids::Socket::ALL {
            let s = w.metric(catalog::cpu_pkg_temp(sck));
            if s.count > 0 && s.mean.is_finite() {
                self.cpu.push(s.mean);
            }
        }
        if node_reported {
            self.nodes += 1;
        }
    }

    fn finish(
        self,
        window_start: f64,
        allocation_id: Option<AllocationId>,
        cep: Option<CepRecord>,
    ) -> ThermalRow {
        ThermalRow {
            window_start,
            allocation_id,
            nodes_reporting: self.nodes,
            gpu_band_counts: self.bands,
            hot_gpus: self.hot,
            gpu_core_mean: self.gpu.mean(),
            gpu_core_max: self.gpu.max(),
            cpu_mean: self.cpu.mean(),
            cpu_max: self.cpu.max(),
            cep,
        }
    }
}

/// Finds the CEP record nearest to a window start (within half the CEP
/// cadence; the paper's plant logs every ~15 s).
fn cep_near(ceps: &[CepRecord], t: f64, tolerance_s: f64) -> Option<CepRecord> {
    ceps.iter()
        .min_by(|a, b| (a.time - t).abs().total_cmp(&(b.time - t).abs()))
        .filter(|r| (r.time - t).abs() <= tolerance_s)
        .copied()
}

/// Builds the cluster-level thermal time series (Datasets 8/9).
pub fn thermal_cluster(windows_by_node: &[Vec<NodeWindow>], ceps: &[CepRecord]) -> Vec<ThermalRow> {
    let mut map: HashMap<i64, ThermalAcc> = HashMap::new();
    for windows in windows_by_node {
        for w in windows {
            map.entry(w.window_start.round() as i64)
                .or_default()
                .add_window(w);
        }
    }
    let mut rows: Vec<ThermalRow> = map
        .into_iter()
        .map(|(k, acc)| {
            let t = k as f64;
            acc.finish(t, None, cep_near(ceps, t, 15.0))
        })
        .collect();
    rows.sort_by(|a, b| a.window_start.total_cmp(&b.window_start));
    rows
}

/// Builds the per-job thermal time series (Datasets 10/11).
pub fn thermal_per_job(
    windows_by_node: &[Vec<NodeWindow>],
    index: &AllocationIndex,
    ceps: &[CepRecord],
) -> Vec<ThermalRow> {
    let mut map: HashMap<(u64, i64), ThermalAcc> = HashMap::new();
    for windows in windows_by_node {
        for w in windows {
            let Some(alloc) = index.lookup(w.node.0, w.window_start + 5.0) else {
                continue;
            };
            map.entry((alloc.0, w.window_start.round() as i64))
                .or_default()
                .add_window(w);
        }
    }
    let mut rows: Vec<ThermalRow> = map
        .into_iter()
        .map(|((alloc, k), acc)| {
            let t = k as f64;
            acc.finish(t, Some(AllocationId(alloc)), cep_near(ceps, t, 15.0))
        })
        .collect();
    rows.sort_by(|a, b| {
        (a.allocation_id.map(|x| x.0), a.window_start.round() as i64)
            .cmp(&(b.allocation_id.map(|x| x.0), b.window_start.round() as i64))
    });
    rows
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::records::{NodeAllocation, NodeFrame};
    use crate::window::WindowAggregator;

    fn windows_with_temps(node: u32, temps: &[(f64, [f64; 6])]) -> Vec<NodeWindow> {
        let mut agg = WindowAggregator::paper(NodeId(node));
        for &(t, gpu_temps) in temps {
            let mut f = NodeFrame::empty(NodeId(node), t);
            for g in GpuSlot::ALL {
                f.set(catalog::gpu_core_temp(g), gpu_temps[g.index()]);
            }
            f.set(catalog::cpu_pkg_temp(crate::ids::Socket::P0), 35.0);
            agg.push(&f).unwrap();
        }
        agg.finish()
    }

    fn cep(t: f64) -> CepRecord {
        CepRecord {
            time: t,
            mtw_supply_c: 21.0,
            mtw_return_c: 28.0,
            tower_tons: 1000.0,
            chiller_tons: 0.0,
            wet_bulb_c: 12.0,
            facility_power_w: 6.6e6,
            it_power_w: 6.0e6,
        }
    }

    #[test]
    fn band_classification() {
        assert_eq!(band_of(25.0), Some(0));
        assert_eq!(band_of(30.0), Some(1));
        assert_eq!(band_of(45.0), Some(2));
        assert_eq!(band_of(59.9), Some(3));
        assert_eq!(band_of(60.0), Some(4));
        assert_eq!(band_of(f64::NAN), None);
    }

    #[test]
    fn cluster_rows_count_bands_and_hot_gpus() {
        let n0 = windows_with_temps(0, &[(0.0, [25.0, 35.0, 45.0, 55.0, 65.0, 28.0])]);
        let n1 = windows_with_temps(1, &[(0.0, [41.0, 42.0, 43.0, 44.0, 45.0, 46.0])]);
        let rows = thermal_cluster(&[n0, n1], &[cep(3.0)]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.nodes_reporting, 2);
        // Bands: node0 -> [25]=b0, [35]=b1, [45]=b2, [55]=b3, [65]=b4, [28]=b0;
        // node1 -> six in b2.
        assert_eq!(r.gpu_band_counts, [2, 1, 7, 1, 1]);
        assert_eq!(r.hot_gpus, vec![(NodeId(0), GpuSlot(4))]);
        assert!((r.cpu_mean - 35.0).abs() < 0.01);
        assert!(r.gpu_core_max >= 65.0 - 0.1);
        assert!(r.cep.is_some(), "CEP record within tolerance");
    }

    #[test]
    fn cep_join_respects_tolerance() {
        let n0 = windows_with_temps(0, &[(0.0, [30.0; 6])]);
        let rows = thermal_cluster(&[n0], &[cep(100.0)]);
        assert!(rows[0].cep.is_none(), "CEP 100 s away must not join");
    }

    #[test]
    fn per_job_rows_scoped_to_allocation() {
        let n0 = windows_with_temps(0, &[(0.0, [50.0; 6]), (10.0, [50.0; 6])]);
        let n1 = windows_with_temps(1, &[(0.0, [30.0; 6])]);
        let index = AllocationIndex::build(&[NodeAllocation {
            allocation_id: AllocationId(9),
            node: NodeId(0),
            begin_time: 0.0,
            end_time: 100.0,
        }]);
        let rows = thermal_per_job(&[n0, n1], &index, &[]);
        assert_eq!(rows.len(), 2, "two windows of the allocated node");
        for r in &rows {
            assert_eq!(r.allocation_id, Some(AllocationId(9)));
            assert_eq!(r.nodes_reporting, 1);
            // Only node 0's 50 C GPUs count: all in band 3.
            assert_eq!(r.gpu_band_counts, [0, 0, 0, 6, 0]);
        }
    }

    #[test]
    fn missing_temps_are_not_counted() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        let f = NodeFrame::empty(NodeId(0), 0.0); // all NaN
        agg.push(&f).unwrap();
        let rows = thermal_cluster(&[agg.finish()], &[]);
        assert_eq!(rows[0].nodes_reporting, 0);
        assert_eq!(rows[0].gpu_band_counts, [0; BAND_COUNT]);
        assert!(rows[0].gpu_core_mean.is_nan());
    }
}
