//! Aligned snapshot superposition (paper Figures 11 and 12).
//!
//! The paper summarizes system dynamics around detected edges by cutting a
//! fixed window around each edge ("1 minute before and 4 minutes
//! following"), superimposing the snapshots aligned at the edge time, and
//! plotting the mean with a 95 % confidence envelope. This module
//! implements the extraction, alignment, and envelope computation for any
//! set of aligned series.

use crate::series::Series;
use crate::special::student_t_critical;
use crate::stats::Welford;
use serde::{Deserialize, Serialize};

/// The paper's snapshot window: 60 s before the edge.
pub const PAPER_WINDOW_BEFORE_S: f64 = 60.0;
/// The paper's snapshot window: 240 s after the edge.
pub const PAPER_WINDOW_AFTER_S: f64 = 240.0;

/// A superposition of aligned snapshots: per-offset mean and confidence
/// envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Superposition {
    /// Time offsets relative to the alignment point (seconds; negative =
    /// before the edge).
    pub offsets_s: Vec<f64>,
    /// Mean across snapshots at each offset.
    pub mean: Vec<f64>,
    /// Lower edge of the confidence envelope.
    pub ci_lo: Vec<f64>,
    /// Upper edge of the confidence envelope.
    pub ci_hi: Vec<f64>,
    /// Number of snapshots contributing at each offset.
    pub support: Vec<u64>,
    /// Number of snapshots requested.
    pub snapshot_count: usize,
}

impl Superposition {
    /// Mean value at the offset closest to `t` seconds.
    pub fn mean_at(&self, t: f64) -> f64 {
        if self.offsets_s.is_empty() {
            return f64::NAN;
        }
        self.offsets_s
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - t).abs().total_cmp(&(b.1 - t).abs()))
            .map_or(f64::NAN, |(i, _)| self.mean[i])
    }

    /// Peak of the mean envelope within `[t_lo, t_hi]` offsets.
    pub fn peak_in(&self, t_lo: f64, t_hi: f64) -> f64 {
        self.offsets_s
            .iter()
            .zip(&self.mean)
            .filter(|(&t, _)| t >= t_lo && t <= t_hi)
            .map(|(_, &m)| m)
            .fold(
                f64::NAN,
                |acc, m| if acc.is_nan() || m > acc { m } else { acc },
            )
    }
}

/// Extracts a window `[align_time - before, align_time + after)` from a
/// series. Offsets outside the series contribute NaN so all snapshots keep
/// identical length.
pub fn extract_snapshot(series: &Series, align_time: f64, before_s: f64, after_s: f64) -> Vec<f64> {
    let dt = series.dt();
    let n_before = (before_s / dt).round() as i64;
    let n_after = (after_s / dt).round() as i64;
    let align_idx = ((align_time - series.t0()) / dt).round() as i64;
    let mut out = Vec::with_capacity((n_before + n_after) as usize);
    for off in -n_before..n_after {
        let i = align_idx + off;
        if i >= 0 && (i as usize) < series.len() {
            out.push(series.values()[i as usize]);
        } else {
            out.push(f64::NAN);
        }
    }
    out
}

/// Superimposes snapshots of `series` aligned at each of `align_times`,
/// returning the per-offset mean and a `confidence` (e.g. 0.95) Student-t
/// envelope. Offsets where fewer than 2 snapshots contribute get a
/// degenerate (mean-only) envelope.
pub fn superimpose(
    series: &Series,
    align_times: &[f64],
    before_s: f64,
    after_s: f64,
    confidence: f64,
) -> Superposition {
    assert!(confidence > 0.0 && confidence < 1.0);
    let dt = series.dt();
    let n_before = (before_s / dt).round() as i64;
    let n_after = (after_s / dt).round() as i64;
    let width = (n_before + n_after) as usize;

    let mut acc: Vec<Welford> = vec![Welford::new(); width];
    for &t in align_times {
        let snap = extract_snapshot(series, t, before_s, after_s);
        for (a, v) in acc.iter_mut().zip(snap) {
            a.push(v); // Welford ignores NaN
        }
    }

    let offsets_s: Vec<f64> = (0..width)
        .map(|i| (i as i64 - n_before) as f64 * dt)
        .collect();
    let mut mean = Vec::with_capacity(width);
    let mut ci_lo = Vec::with_capacity(width);
    let mut ci_hi = Vec::with_capacity(width);
    let mut support = Vec::with_capacity(width);
    for a in &acc {
        let m = a.mean();
        mean.push(m);
        support.push(a.count());
        if a.count() >= 2 {
            let sem = a.std() / (a.count() as f64).sqrt();
            let t_crit = student_t_critical((a.count() - 1) as f64, confidence);
            ci_lo.push(m - t_crit * sem);
            ci_hi.push(m + t_crit * sem);
        } else {
            ci_lo.push(m);
            ci_hi.push(m);
        }
    }

    Superposition {
        offsets_s,
        mean,
        ci_lo,
        ci_hi,
        support,
        snapshot_count: align_times.len(),
    }
}

/// Convenience: the paper's exact window (1 min before, 4 min after, 95 %).
pub fn superimpose_paper_window(series: &Series, align_times: &[f64]) -> Superposition {
    superimpose(
        series,
        align_times,
        PAPER_WINDOW_BEFORE_S,
        PAPER_WINDOW_AFTER_S,
        0.95,
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn extract_aligns_correctly() {
        let s = Series::new(0.0, 10.0, (0..20).map(|i| i as f64).collect());
        // Align at t=100 (index 10), 20 s before, 30 s after.
        let snap = extract_snapshot(&s, 100.0, 20.0, 30.0);
        assert_eq!(snap, vec![8.0, 9.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn extract_pads_with_nan_at_boundaries() {
        let s = Series::new(0.0, 10.0, (0..5).map(|i| i as f64).collect());
        let snap = extract_snapshot(&s, 0.0, 20.0, 30.0);
        assert!(snap[0].is_nan() && snap[1].is_nan());
        assert_eq!(&snap[2..], &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn superposition_of_identical_events() {
        // A repeating sawtooth; snapshots at each period start are identical,
        // so CI width collapses to ~0.
        let period = 10usize;
        let values: Vec<f64> = (0..100).map(|i| (i % period) as f64).collect();
        let s = Series::new(0.0, 1.0, values);
        let aligns: Vec<f64> = (2..8).map(|k| (k * period) as f64).collect();
        let sp = superimpose(&s, &aligns, 2.0, 5.0, 0.95);
        assert_eq!(sp.snapshot_count, 6);
        for i in 0..sp.offsets_s.len() {
            assert_eq!(sp.support[i], 6);
            assert!((sp.ci_hi[i] - sp.ci_lo[i]).abs() < 1e-9);
        }
        // Mean at offset 0 equals the sawtooth value at period start.
        assert!((sp.mean_at(0.0) - 0.0).abs() < 1e-12);
        assert!((sp.mean_at(3.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn superposition_ci_contains_mean_spread() {
        // Two snapshot sites with different levels -> CI must straddle both.
        let mut values = vec![0.0; 40];
        for v in values.iter_mut().take(20) {
            *v = 10.0;
        }
        for v in values.iter_mut().skip(20) {
            *v = 20.0;
        }
        let s = Series::new(0.0, 1.0, values);
        let sp = superimpose(&s, &[5.0, 25.0], 2.0, 3.0, 0.95);
        let mid = sp.mean_at(0.0);
        assert!((mid - 15.0).abs() < 1e-9);
        let idx = sp.offsets_s.iter().position(|&o| o == 0.0).unwrap();
        assert!(sp.ci_lo[idx] < 10.5 && sp.ci_hi[idx] > 19.5);
    }

    #[test]
    fn peak_in_window() {
        let s = Series::new(0.0, 1.0, vec![0.0, 1.0, 5.0, 2.0, 0.0, 0.0, 0.0, 0.0]);
        let sp = superimpose(&s, &[1.0], 1.0, 5.0, 0.95);
        assert_eq!(sp.peak_in(0.0, 4.0), 5.0);
    }

    #[test]
    fn empty_alignments_yield_nan_means() {
        let s = Series::new(0.0, 1.0, vec![1.0; 10]);
        let sp = superimpose(&s, &[], 2.0, 2.0, 0.95);
        assert_eq!(sp.snapshot_count, 0);
        assert!(sp.mean.iter().all(|m| m.is_nan()));
        assert!(sp.support.iter().all(|&c| c == 0));
    }

    #[test]
    fn paper_window_dimensions() {
        let s = Series::new(0.0, 10.0, vec![1.0; 100]);
        let sp = superimpose_paper_window(&s, &[500.0]);
        // 60 s before + 240 s after at 10 s dt = 30 samples.
        assert_eq!(sp.offsets_s.len(), 30);
        assert_eq!(sp.offsets_s[0], -60.0);
        assert_eq!(*sp.offsets_s.last().unwrap(), 230.0);
    }
}
