//! Pearson correlation with significance testing and Bonferroni correction.
//!
//! Figure 13 of the paper counts each GPU failure type per node (a
//! 4,626-dimensional vector per type), computes the Pearson correlation for
//! every pair of types, and reports coefficients "significant at 0.05 after
//! applying the Bonferroni correction to account for the number of pairs".
//! This module implements that exact procedure for arbitrary count matrices.

use crate::special::student_t_two_sided_p;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns NaN when either side has zero variance or fewer than 2 points.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal lengths");
    let n = x.len();
    if n < 2 {
        return f64::NAN;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// Two-sided p-value for a Pearson r under the null of zero correlation,
/// via the `t = r*sqrt((n-2)/(1-r^2))` transform.
pub fn pearson_p_value(r: f64, n: usize) -> f64 {
    if n < 3 || r.is_nan() {
        return f64::NAN;
    }
    if r.abs() >= 1.0 {
        return 0.0;
    }
    let df = (n - 2) as f64;
    let t = r * (df / (1.0 - r * r)).sqrt();
    student_t_two_sided_p(t, df)
}

/// One entry of a pairwise correlation analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairCorrelation {
    /// First variable index.
    pub i: usize,
    /// Second variable index.
    pub j: usize,
    /// Pearson correlation coefficient.
    pub r: f64,
    /// Two-sided p-value under the zero-correlation null.
    pub p_value: f64,
    /// True if `p_value <= alpha / n_pairs` (Bonferroni-corrected).
    pub significant: bool,
}

/// The full pairwise correlation matrix of a set of variables, with
/// Bonferroni-corrected significance at level `alpha`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationMatrix {
    /// Number of variables.
    pub vars: usize,
    /// Number of observations per variable.
    pub observations: usize,
    /// All `vars*(vars-1)/2` upper-triangle pairs.
    pub pairs: Vec<PairCorrelation>,
    /// The Bonferroni-corrected threshold actually applied.
    pub corrected_alpha: f64,
}

impl CorrelationMatrix {
    /// Computes all pairwise Pearson correlations between the rows of
    /// `variables` (each row is one variable observed over the same
    /// `observations` columns), flagging significance at `alpha` after
    /// Bonferroni correction. Pairs are computed in parallel.
    pub fn compute(variables: &[Vec<f64>], alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        let _obs = summit_obs::span("summit_analysis_correlation");
        let vars = variables.len();
        let observations = variables.first().map_or(0, |v| v.len());
        for v in variables {
            assert_eq!(v.len(), observations, "all variables need equal length");
        }
        let n_pairs = vars * vars.saturating_sub(1) / 2;
        let corrected_alpha = if n_pairs > 0 {
            alpha / n_pairs as f64
        } else {
            alpha
        };

        let index_pairs: Vec<(usize, usize)> = (0..vars)
            .flat_map(|i| ((i + 1)..vars).map(move |j| (i, j)))
            .collect();

        // Typical matrices (Figure 13: 10 failure types -> 45 pairs)
        // have far fewer pairs than the pool-dispatch break-even, so
        // small inputs run inline; the chunk grid is unchanged either
        // way, keeping results bit-identical.
        let pairs: Vec<PairCorrelation> = index_pairs
            .par_iter()
            .seq_below(32)
            .map(|&(i, j)| {
                let r = pearson(&variables[i], &variables[j]);
                let p = pearson_p_value(r, observations);
                PairCorrelation {
                    i,
                    j,
                    r,
                    p_value: p,
                    significant: p.is_finite() && p <= corrected_alpha,
                }
            })
            .collect();

        Self {
            vars,
            observations,
            pairs,
            corrected_alpha,
        }
    }

    /// The correlation entry for `(i, j)` (order-insensitive).
    pub fn get(&self, i: usize, j: usize) -> Option<&PairCorrelation> {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.pairs.iter().find(|p| p.i == a && p.j == b)
    }

    /// Only the significant pairs, sorted by |r| descending.
    pub fn significant_pairs(&self) -> Vec<&PairCorrelation> {
        let mut v: Vec<&PairCorrelation> = self.pairs.iter().filter(|p| p.significant).collect();
        v.sort_by(|a, b| b.r.abs().total_cmp(&a.r.abs()));
        v
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn pearson_perfect_correlation() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 2.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_independent_is_small() {
        // Deterministic pseudo-independent sequences.
        let x: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761_usize) % 997) as f64)
            .collect();
        let y: Vec<f64> = (0..1000)
            .map(|i| ((i * 40503 + 12345) % 1009) as f64)
            .collect();
        assert!(pearson(&x, &y).abs() < 0.1);
    }

    #[test]
    fn pearson_zero_variance_is_nan() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert!(pearson(&x, &y).is_nan());
    }

    #[test]
    fn pearson_reference_value() {
        // Hand computation: sxy = 12, sxx = 10, syy = 21.2 -> r = 12/sqrt(212).
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 7.0];
        let expect = 12.0 / 212.0_f64.sqrt();
        assert!((pearson(&x, &y) - expect).abs() < 1e-12);
    }

    #[test]
    fn p_value_closed_form_df2() {
        // For n = 4 (df = 2) the t CDF has the closed form
        // P(T<=t) = 1/2 + t / (2*sqrt(2+t^2)), so the two-sided p-value of
        // r = 0.5 is exactly 0.5.
        let p = pearson_p_value(0.5, 4);
        assert!((p - 0.5).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn p_value_strong_correlation_significant() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v + ((v * 13.0).sin())).collect();
        let r = pearson(&x, &y);
        assert!(pearson_p_value(r, 100) < 1e-10);
    }

    #[test]
    fn matrix_flags_only_real_pairs() {
        let n = 200;
        let base: Vec<f64> = (0..n).map(|i| ((i * 7919) % 103) as f64).collect();
        // v1 strongly tied to v0; v2 independent.
        let v0 = base.clone();
        let v1: Vec<f64> = base.iter().map(|x| 2.0 * x + 1.0).collect();
        let v2: Vec<f64> = (0..n).map(|i| ((i * 104729 + 31) % 97) as f64).collect();
        let m = CorrelationMatrix::compute(&[v0, v1, v2], 0.05);
        assert_eq!(m.pairs.len(), 3);
        let p01 = m.get(0, 1).unwrap();
        assert!(p01.significant && p01.r > 0.999);
        let p02 = m.get(0, 2).unwrap();
        assert!(
            !p02.significant,
            "independent pair flagged: r={} p={}",
            p02.r, p02.p_value
        );
    }

    #[test]
    fn bonferroni_threshold_applied() {
        let vars: Vec<Vec<f64>> = (0..5)
            .map(|k| (0..30).map(|i| ((i * (k + 3) * 31) % 17) as f64).collect())
            .collect();
        let m = CorrelationMatrix::compute(&vars, 0.05);
        // 10 pairs -> corrected alpha = 0.005.
        assert!((m.corrected_alpha - 0.005).abs() < 1e-12);
        for p in &m.pairs {
            assert_eq!(p.significant, p.p_value <= m.corrected_alpha);
        }
    }

    #[test]
    fn significant_pairs_sorted() {
        let n = 100;
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x * 1.0).collect();
        let c: Vec<f64> = a.iter().map(|x| x + 30.0 * ((x * 0.7).sin())).collect();
        let m = CorrelationMatrix::compute(&[a, b, c], 0.05);
        let sig = m.significant_pairs();
        for w in sig.windows(2) {
            assert!(w[0].r.abs() >= w[1].r.abs());
        }
    }

    #[test]
    fn get_is_order_insensitive() {
        let vars: Vec<Vec<f64>> = (0..3)
            .map(|k| (0..10).map(|i| ((i + k) * 3 % 7) as f64).collect())
            .collect();
        let m = CorrelationMatrix::compute(&vars, 0.05);
        assert_eq!(
            m.get(0, 2).map(|p| (p.i, p.j)),
            m.get(2, 0).map(|p| (p.i, p.j))
        );
    }

    #[test]
    fn empty_and_single_variable() {
        let m = CorrelationMatrix::compute(&[], 0.05);
        assert!(m.pairs.is_empty());
        let m1 = CorrelationMatrix::compute(&[vec![1.0, 2.0]], 0.05);
        assert!(m1.pairs.is_empty());
    }
}
