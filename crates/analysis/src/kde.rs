//! Gaussian kernel density estimation, one- and two-dimensional.
//!
//! The paper's Figures 6 and 9 are Gaussian-KDE joint density plots
//! (energy × max-input-power per scheduling class; CPU × GPU per-node
//! power). This module implements the classic product-kernel estimator
//! with Scott's and Silverman's bandwidth rules, evaluated on grids in
//! parallel with rayon, plus mode (density peak) extraction used to
//! characterize the multi-modal structure the paper describes.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Bandwidth selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bandwidth {
    /// Scott's rule: `n^(-1/(d+4)) * sigma` per dimension.
    Scott,
    /// Silverman's rule: `(n*(d+2)/4)^(-1/(d+4)) * sigma` per dimension.
    Silverman,
}

impl Bandwidth {
    fn factor(self, n: usize, d: usize) -> f64 {
        let n = n as f64;
        let d = d as f64;
        match self {
            Bandwidth::Scott => n.powf(-1.0 / (d + 4.0)),
            Bandwidth::Silverman => (n * (d + 2.0) / 4.0).powf(-1.0 / (d + 4.0)),
        }
    }
}

fn std_dev(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
    var.sqrt()
}

/// One-dimensional Gaussian KDE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kde1d {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde1d {
    /// Fits a 1-D KDE; NaNs dropped. Returns `None` if fewer than 2 finite
    /// samples or zero spread (degenerate density).
    pub fn fit(data: &[f64], rule: Bandwidth) -> Option<Self> {
        let _obs = summit_obs::span("summit_analysis_kde_fit");
        let samples: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if samples.len() < 2 {
            return None;
        }
        let sigma = std_dev(&samples);
        if sigma <= 0.0 {
            return None;
        }
        let bandwidth = rule.factor(samples.len(), 1) * sigma;
        Some(Self { samples, bandwidth })
    }

    /// Fits with an explicit bandwidth (must be positive).
    pub fn with_bandwidth(data: &[f64], bandwidth: f64) -> Option<Self> {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let samples: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if samples.is_empty() {
            return None;
        }
        Some(Self { samples, bandwidth })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Evaluates the density at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.samples.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        let sum: f64 = self
            .samples
            .iter()
            .map(|&xi| {
                let u = (x - xi) / h;
                (-0.5 * u * u).exp()
            })
            .sum();
        norm * sum
    }

    /// Evaluates on a uniform grid covering the sample range extended by
    /// `pad` bandwidths on each side; returns `(xs, densities)`.
    pub fn grid(&self, points: usize, pad: f64) -> (Vec<f64>, Vec<f64>) {
        assert!(points >= 2);
        let lo = self.samples.iter().copied().fold(f64::INFINITY, f64::min) - pad * self.bandwidth;
        let hi = self
            .samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            + pad * self.bandwidth;
        let xs: Vec<f64> = (0..points)
            .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
            .collect();
        // Tiny grids run inline — the pool wakeup costs more than a
        // few dozen evals; the chunk grid (and thus every bit of the
        // output) is the same on both dispatch paths.
        let ds: Vec<f64> = xs.par_iter().seq_below(32).map(|&x| self.eval(x)).collect();
        (xs, ds)
    }

    /// Finds local density maxima ("modes") on a grid — the paper's
    /// "multi-modal pattern with several high-density regions" metric for
    /// the small scheduling classes (Figure 6 discussion).
    pub fn modes(&self, grid_points: usize) -> Vec<f64> {
        let (xs, ds) = self.grid(grid_points, 3.0);
        let mut modes = Vec::new();
        for i in 1..ds.len() - 1 {
            if ds[i] > ds[i - 1] && ds[i] >= ds[i + 1] {
                modes.push(xs[i]);
            }
        }
        modes
    }
}

/// Two-dimensional product-kernel Gaussian KDE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kde2d {
    xs: Vec<f64>,
    ys: Vec<f64>,
    hx: f64,
    hy: f64,
}

/// A dense grid evaluation of a 2-D density.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityGrid {
    /// Grid x coordinates.
    pub x_axis: Vec<f64>,
    /// Grid y coordinates.
    pub y_axis: Vec<f64>,
    /// Row-major `[y][x]` densities.
    pub density: Vec<f64>,
}

impl DensityGrid {
    /// Density at grid cell `(xi, yi)`.
    pub fn at(&self, xi: usize, yi: usize) -> f64 {
        self.density[yi * self.x_axis.len() + xi]
    }

    /// Location `(x, y)` and value of the global density peak, or NaNs
    /// for a zero-sized grid.
    pub fn peak(&self) -> (f64, f64, f64) {
        let Some((idx, &v)) = self
            .density
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
        else {
            return (f64::NAN, f64::NAN, f64::NAN);
        };
        let nx = self.x_axis.len();
        (self.x_axis[idx % nx], self.y_axis[idx / nx], v)
    }

    /// Counts local maxima above `threshold_frac` of the global peak —
    /// quantifies multi-modality (Figure 6: "several high-density regions").
    pub fn count_modes(&self, threshold_frac: f64) -> usize {
        let nx = self.x_axis.len();
        let ny = self.y_axis.len();
        let peak = self.peak().2;
        let thresh = peak * threshold_frac;
        let mut count = 0;
        for yi in 1..ny.saturating_sub(1) {
            for xi in 1..nx.saturating_sub(1) {
                let v = self.at(xi, yi);
                if v < thresh {
                    continue;
                }
                let neighbors = [
                    self.at(xi - 1, yi),
                    self.at(xi + 1, yi),
                    self.at(xi, yi - 1),
                    self.at(xi, yi + 1),
                    self.at(xi - 1, yi - 1),
                    self.at(xi + 1, yi - 1),
                    self.at(xi - 1, yi + 1),
                    self.at(xi + 1, yi + 1),
                ];
                if neighbors.iter().all(|&n| v >= n) && neighbors.iter().any(|&n| v > n) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Fraction of total density mass above `level_frac` of the peak —
    /// a proxy for how concentrated the distribution is (few large rings
    /// vs many small ones).
    pub fn mass_above(&self, level_frac: f64) -> f64 {
        let peak = self.peak().2;
        let thresh = peak * level_frac;
        let total: f64 = self.density.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let above: f64 = self.density.iter().filter(|&&d| d >= thresh).sum();
        above / total
    }
}

impl Kde2d {
    /// Fits a 2-D KDE from paired observations; pairs with any NaN are
    /// dropped. Returns `None` if fewer than 2 valid pairs or zero spread
    /// in either dimension.
    pub fn fit(x: &[f64], y: &[f64], rule: Bandwidth) -> Option<Self> {
        assert_eq!(x.len(), y.len(), "x and y must be the same length");
        let _obs = summit_obs::span("summit_analysis_kde2_fit");
        let pairs: Vec<(f64, f64)> = x
            .iter()
            .zip(y)
            .filter(|(a, b)| a.is_finite() && b.is_finite())
            .map(|(&a, &b)| (a, b))
            .collect();
        if pairs.len() < 2 {
            return None;
        }
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let sx = std_dev(&xs);
        let sy = std_dev(&ys);
        if sx <= 0.0 || sy <= 0.0 {
            return None;
        }
        let f = rule.factor(pairs.len(), 2);
        Some(Self {
            xs,
            ys,
            hx: f * sx,
            hy: f * sy,
        })
    }

    /// Bandwidths `(hx, hy)`.
    pub fn bandwidths(&self) -> (f64, f64) {
        (self.hx, self.hy)
    }

    /// Number of samples retained.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Always false — construction requires at least two samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates the density at `(x, y)`.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let n = self.xs.len() as f64;
        let norm = 1.0 / (n * 2.0 * std::f64::consts::PI * self.hx * self.hy);
        let sum: f64 = self
            .xs
            .iter()
            .zip(&self.ys)
            .map(|(&xi, &yi)| {
                let u = (x - xi) / self.hx;
                let v = (y - yi) / self.hy;
                (-0.5 * (u * u + v * v)).exp()
            })
            .sum();
        norm * sum
    }

    /// Evaluates on an `nx x ny` grid spanning the data range padded by 2
    /// bandwidths; rows are computed in parallel.
    pub fn grid(&self, nx: usize, ny: usize) -> DensityGrid {
        assert!(nx >= 2 && ny >= 2);
        let x_lo = self.xs.iter().copied().fold(f64::INFINITY, f64::min) - 2.0 * self.hx;
        let x_hi = self.xs.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 2.0 * self.hx;
        let y_lo = self.ys.iter().copied().fold(f64::INFINITY, f64::min) - 2.0 * self.hy;
        let y_hi = self.ys.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 2.0 * self.hy;
        let x_axis: Vec<f64> = (0..nx)
            .map(|i| x_lo + (x_hi - x_lo) * i as f64 / (nx - 1) as f64)
            .collect();
        let y_axis: Vec<f64> = (0..ny)
            .map(|i| y_lo + (y_hi - y_lo) * i as f64 / (ny - 1) as f64)
            .collect();
        // A handful of rows is cheaper inline than dispatched (each
        // row still costs nx * n_samples flops, so the floor is low).
        let density: Vec<f64> = y_axis
            .par_iter()
            .seq_below(8)
            .flat_map_iter(|&y| x_axis.iter().map(move |&x| (x, y)))
            .map(|(x, y)| self.eval(x, y))
            .collect();
        DensityGrid {
            x_axis,
            y_axis,
            density,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn kde1d_integrates_to_one() {
        let data: Vec<f64> = (0..200)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 / 100.0)
            .collect();
        let kde = Kde1d::fit(&data, Bandwidth::Scott).unwrap();
        let (xs, ds) = kde.grid(2000, 6.0);
        let dx = xs[1] - xs[0];
        let integral: f64 = ds.iter().sum::<f64>() * dx;
        assert!(
            (integral - 1.0).abs() < 0.01,
            "KDE should integrate to ~1, got {integral}"
        );
    }

    #[test]
    fn kde1d_peak_near_data_center() {
        let data: Vec<f64> = (0..100)
            .map(|i| 5.0 + ((i % 10) as f64 - 4.5) * 0.1)
            .collect();
        let kde = Kde1d::fit(&data, Bandwidth::Silverman).unwrap();
        assert!(kde.eval(5.0) > kde.eval(3.0));
        assert!(kde.eval(5.0) > kde.eval(7.0));
    }

    #[test]
    fn kde1d_bimodal_detection() {
        let mut data = Vec::new();
        for i in 0..100 {
            data.push(0.0 + (i % 10) as f64 * 0.05);
            data.push(10.0 + (i % 10) as f64 * 0.05);
        }
        let kde = Kde1d::with_bandwidth(&data, 0.5).unwrap();
        let modes = kde.modes(512);
        assert!(modes.len() >= 2, "expected bimodal, found modes {modes:?}");
        assert!(modes.iter().any(|&m| (m - 0.2).abs() < 1.0));
        assert!(modes.iter().any(|&m| (m - 10.2).abs() < 1.0));
    }

    #[test]
    fn kde1d_degenerate_inputs() {
        assert!(Kde1d::fit(&[], Bandwidth::Scott).is_none());
        assert!(Kde1d::fit(&[1.0], Bandwidth::Scott).is_none());
        assert!(Kde1d::fit(&[2.0, 2.0, 2.0], Bandwidth::Scott).is_none());
    }

    #[test]
    fn scott_vs_silverman_1d_close() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.137).sin() * 3.0).collect();
        let a = Kde1d::fit(&data, Bandwidth::Scott).unwrap();
        let b = Kde1d::fit(&data, Bandwidth::Silverman).unwrap();
        // For d=1, silverman = scott * (4/3)^(1/5) ≈ 1.059 * scott.
        let ratio = b.bandwidth() / a.bandwidth();
        assert!((ratio - (4.0_f64 / 3.0).powf(0.2)).abs() < 1e-9);
    }

    #[test]
    fn kde2d_integrates_to_one() {
        let x: Vec<f64> = (0..150).map(|i| (i % 13) as f64).collect();
        let y: Vec<f64> = (0..150).map(|i| ((i * 7) % 11) as f64).collect();
        let kde = Kde2d::fit(&x, &y, Bandwidth::Scott).unwrap();
        let g = kde.grid(80, 80);
        let dx = g.x_axis[1] - g.x_axis[0];
        let dy = g.y_axis[1] - g.y_axis[0];
        let integral: f64 = g.density.iter().sum::<f64>() * dx * dy;
        assert!(
            (integral - 1.0).abs() < 0.05,
            "2-D KDE should integrate to ~1, got {integral}"
        );
    }

    #[test]
    fn kde2d_peak_location() {
        let x: Vec<f64> = (0..100)
            .map(|i| 3.0 + ((i % 7) as f64 - 3.0) * 0.1)
            .collect();
        let y: Vec<f64> = (0..100)
            .map(|i| -2.0 + ((i % 5) as f64 - 2.0) * 0.1)
            .collect();
        let kde = Kde2d::fit(&x, &y, Bandwidth::Silverman).unwrap();
        let g = kde.grid(64, 64);
        let (px, py, pv) = g.peak();
        assert!(pv > 0.0);
        assert!((px - 3.0).abs() < 0.5, "peak x {px}");
        assert!((py + 2.0).abs() < 0.5, "peak y {py}");
    }

    #[test]
    fn kde2d_multimodality() {
        // Two well-separated clusters → at least 2 modes.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let j = (i % 8) as f64 * 0.05;
            x.push(0.0 + j);
            y.push(0.0 + j);
            x.push(10.0 + j);
            y.push(10.0 + j);
        }
        let kde = Kde2d::fit(&x, &y, Bandwidth::Scott).unwrap();
        let g = kde.grid(96, 96);
        assert!(
            g.count_modes(0.1) >= 2,
            "expected >= 2 modes, got {}",
            g.count_modes(0.1)
        );
    }

    #[test]
    fn kde2d_drops_nan_pairs() {
        let x = [1.0, f64::NAN, 2.0, 3.0];
        let y = [1.0, 1.0, f64::NAN, 3.0];
        let kde = Kde2d::fit(&x, &y, Bandwidth::Scott).unwrap();
        assert_eq!(kde.len(), 2);
    }

    #[test]
    fn kde2d_degenerate_is_none() {
        assert!(Kde2d::fit(&[1.0, 1.0], &[2.0, 3.0], Bandwidth::Scott).is_none());
        assert!(Kde2d::fit(&[], &[], Bandwidth::Scott).is_none());
    }

    #[test]
    fn mass_above_monotone_in_level() {
        let x: Vec<f64> = (0..120).map(|i| (i % 13) as f64).collect();
        let y: Vec<f64> = (0..120).map(|i| ((i * 5) % 17) as f64).collect();
        let kde = Kde2d::fit(&x, &y, Bandwidth::Scott).unwrap();
        let g = kde.grid(48, 48);
        let m1 = g.mass_above(0.1);
        let m5 = g.mass_above(0.5);
        let m9 = g.mass_above(0.9);
        assert!(m1 >= m5 && m5 >= m9);
        assert!(m1 <= 1.0 && m9 >= 0.0);
    }
}
