//! Rolling-window statistics and autocorrelation.
//!
//! The paper's monitoring pipeline renders near-real-time summaries over
//! sliding windows (Section 2), and its spectral method is motivated by
//! the power series' "auto-correlated nature" (Section 4.2). This module
//! provides O(n) rolling means, O(n log n)-ish rolling extrema (monotonic
//! deque), and the sample autocorrelation function used to justify
//! differencing.

use crate::cdf::Ecdf;
use crate::kde::{Bandwidth, Kde1d};
use crate::series::Series;
use crate::stats::{Welford, WindowStats};
use std::collections::VecDeque;

/// Rolling mean over a window of `w` samples (NaN-aware: windows with no
/// finite samples yield NaN). Output has the same length as the input;
/// entry `i` covers samples `[i+1-w, i]` clamped to the start.
pub fn rolling_mean(values: &[f64], w: usize) -> Vec<f64> {
    assert!(w >= 1, "window must be at least 1");
    let mut out = Vec::with_capacity(values.len());
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut q: VecDeque<f64> = VecDeque::with_capacity(w);
    for &v in values {
        q.push_back(v);
        if v.is_finite() {
            sum += v;
            count += 1;
        }
        if let Some(old) = (q.len() > w).then(|| q.pop_front()).flatten() {
            if old.is_finite() {
                sum -= old;
                count -= 1;
            }
        }
        out.push(if count > 0 {
            sum / count as f64
        } else {
            f64::NAN
        });
    }
    out
}

/// Rolling maximum over a window of `w` samples using a monotonic deque
/// (amortized O(1) per sample). NaNs are skipped.
pub fn rolling_max(values: &[f64], w: usize) -> Vec<f64> {
    rolling_extremum(values, w, |a, b| a >= b)
}

/// Rolling minimum over a window of `w` samples.
pub fn rolling_min(values: &[f64], w: usize) -> Vec<f64> {
    rolling_extremum(values, w, |a, b| a <= b)
}

fn rolling_extremum(values: &[f64], w: usize, dominates: fn(f64, f64) -> bool) -> Vec<f64> {
    assert!(w >= 1, "window must be at least 1");
    let mut out = Vec::with_capacity(values.len());
    // Deque of (index, value), values monotone under `dominates`.
    let mut q: VecDeque<(usize, f64)> = VecDeque::new();
    for (i, &v) in values.iter().enumerate() {
        if v.is_finite() {
            while let Some(&(_, back)) = q.back() {
                if dominates(v, back) {
                    q.pop_back();
                } else {
                    break;
                }
            }
            q.push_back((i, v));
        }
        // Evict entries that left the window.
        while let Some(&(j, _)) = q.front() {
            if i >= w && j <= i - w {
                q.pop_front();
            } else {
                break;
            }
        }
        out.push(q.front().map_or(f64::NAN, |&(_, v)| v));
    }
    out
}

/// Sample autocorrelation at lags `0..=max_lag` (NaN-free input assumed;
/// NaNs are dropped pairwise). Lag 0 is always 1 for non-degenerate input.
pub fn autocorrelation(values: &[f64], max_lag: usize) -> Vec<f64> {
    let v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    let n = v.len();
    if n < 2 {
        return vec![f64::NAN; max_lag + 1];
    }
    let mean = v.iter().sum::<f64>() / n as f64;
    let var: f64 = v.iter().map(|x| (x - mean).powi(2)).sum();
    if var <= 0.0 {
        return vec![f64::NAN; max_lag + 1];
    }
    (0..=max_lag)
        .map(|lag| {
            if lag >= n {
                return f64::NAN;
            }
            let cov: f64 = (0..n - lag)
                .map(|i| (v[i] - mean) * (v[i + lag] - mean))
                .sum();
            cov / var
        })
        .collect()
}

/// First lag (>= 1) at which the autocorrelation drops below `threshold`
/// — a de-correlation length estimate.
pub fn decorrelation_lag(values: &[f64], threshold: f64, max_lag: usize) -> Option<usize> {
    let acf = autocorrelation(values, max_lag);
    acf.iter()
        .enumerate()
        .skip(1)
        .find(|(_, &r)| r.is_finite() && r < threshold)
        .map(|(lag, _)| lag)
}

/// Rolling mean as a [`Series`] helper.
pub fn rolling_mean_series(series: &Series, window_s: f64) -> Series {
    let w = ((window_s / series.dt()).round() as usize).max(1);
    Series::new(series.t0(), series.dt(), rolling_mean(series.values(), w))
}

/// Online sliding-window `count/min/max/mean/std` over the last `window`
/// samples — the incremental reducer the streaming pipeline keeps per
/// live gauge, O(1) amortized per push with memory bounded by the
/// window (never the stream length).
///
/// Implemented as the classic two-stack queue of [`Welford`] monoids:
/// the back stack accumulates arrivals, the front stack holds suffix
/// aggregates built when an eviction finds it empty, and the window
/// statistic is one [`Welford::merge`] of the two tops.
#[derive(Debug, Clone)]
pub struct RollingStats {
    window: usize,
    /// Front stack, oldest on top; each entry aggregates itself and all
    /// entries beneath it (i.e. every younger front element).
    front: Vec<(f64, Welford)>,
    back: Vec<f64>,
    back_agg: Welford,
}

impl RollingStats {
    /// Creates a reducer over the last `window` samples (floored at 1).
    pub fn new(window: usize) -> Self {
        Self {
            window: window.max(1),
            front: Vec::new(),
            back: Vec::new(),
            back_agg: Welford::new(),
        }
    }

    /// Number of samples currently in the window (non-finite samples
    /// occupy positions but do not enter the statistics, matching
    /// [`Welford::push`]).
    pub fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }

    /// True when no samples are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn evict(&mut self) {
        if self.front.is_empty() {
            while let Some(v) = self.back.pop() {
                let mut agg = self.front.last().map_or_else(Welford::new, |&(_, a)| a);
                agg.push(v);
                self.front.push((v, agg));
            }
            self.back_agg = Welford::new();
        }
        self.front.pop();
    }

    /// Pushes one sample, evicting the oldest once the window is full.
    pub fn push(&mut self, v: f64) {
        if self.len() == self.window {
            self.evict();
        }
        self.back.push(v);
        self.back_agg.push(v);
    }

    /// Current window statistics (count reflects finite samples only).
    pub fn stats(&self) -> WindowStats {
        let mut agg = self.front.last().map_or_else(Welford::new, |&(_, a)| a);
        agg.merge(&self.back_agg);
        agg.finish()
    }
}

/// Bounded sample sketch refreshed per closed window: keeps the last
/// `capacity` values and re-fits the distribution estimators on demand,
/// so the streaming pipeline can serve live ECDF percentiles and KDE
/// densities without retaining the full stream.
#[derive(Debug, Clone)]
pub struct RollingSketch {
    capacity: usize,
    values: VecDeque<f64>,
}

impl RollingSketch {
    /// Creates a sketch over the last `capacity` samples (floored at 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            values: VecDeque::with_capacity(capacity),
        }
    }

    /// Pushes one sample, evicting the oldest at capacity. Non-finite
    /// samples are skipped (they carry no distributional information).
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.values.len() == self.capacity {
            self.values.pop_front();
        }
        self.values.push_back(v);
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the sketch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn snapshot(&self) -> Vec<f64> {
        self.values.iter().copied().collect()
    }

    /// Refreshes the empirical CDF over the retained samples.
    pub fn ecdf(&self) -> Option<Ecdf> {
        Ecdf::new(&self.snapshot())
    }

    /// Refreshes a Gaussian KDE (Silverman bandwidth) over the
    /// retained samples.
    pub fn kde(&self) -> Option<Kde1d> {
        Kde1d::fit(&self.snapshot(), Bandwidth::Silverman)
    }

    /// Percentile `p` in `[0, 1]` of the retained samples via the ECDF;
    /// NaN while empty.
    pub fn percentile(&self, p: f64) -> f64 {
        self.ecdf().map_or(f64::NAN, |e| e.percentile(p))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn rolling_mean_basic() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(rolling_mean(&v, 2), vec![1.0, 1.5, 2.5, 3.5]);
        assert_eq!(rolling_mean(&v, 1), v.to_vec());
        // Window larger than the data: grows with the prefix.
        assert_eq!(rolling_mean(&v, 10), vec![1.0, 1.5, 2.0, 2.5]);
    }

    #[test]
    fn rolling_mean_nan_aware() {
        let v = [1.0, f64::NAN, 3.0];
        let r = rolling_mean(&v, 2);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], 1.0); // only the finite sample counts
        assert_eq!(r[2], 3.0);
        let all_nan = rolling_mean(&[f64::NAN, f64::NAN], 2);
        assert!(all_nan.iter().all(|x| x.is_nan()));
    }

    #[test]
    fn rolling_max_min_match_naive() {
        let v: Vec<f64> = (0..200)
            .map(|i| ((i * 37) % 23) as f64 - ((i * 11) % 7) as f64)
            .collect();
        let w = 7;
        let fast_max = rolling_max(&v, w);
        let fast_min = rolling_min(&v, w);
        for i in 0..v.len() {
            let lo = i.saturating_sub(w - 1);
            let naive_max = v[lo..=i].iter().cloned().fold(f64::MIN, f64::max);
            let naive_min = v[lo..=i].iter().cloned().fold(f64::MAX, f64::min);
            assert_eq!(fast_max[i], naive_max, "max at {i}");
            assert_eq!(fast_min[i], naive_min, "min at {i}");
        }
    }

    #[test]
    fn rolling_max_skips_nan() {
        let v = [1.0, f64::NAN, 0.5];
        let r = rolling_max(&v, 2);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], 1.0);
        assert_eq!(r[2], 0.5, "the NaN and expired 1.0 are gone");
    }

    #[test]
    fn autocorrelation_of_white_vs_slow_signal() {
        // Pseudo-white noise decorrelates immediately.
        let noise: Vec<f64> = (0..2000)
            .map(|i| (((i * 2654435761_usize) % 1000) as f64 / 500.0) - 1.0)
            .collect();
        let acf = autocorrelation(&noise, 10);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        assert!(acf[1].abs() < 0.1, "white noise lag-1 {}", acf[1]);

        // A slow sinusoid stays correlated for many lags.
        let slow: Vec<f64> = (0..2000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 500.0).sin())
            .collect();
        let acf_slow = autocorrelation(&slow, 50);
        assert!(acf_slow[20] > 0.9, "slow signal lag-20 {}", acf_slow[20]);
    }

    #[test]
    fn power_series_autocorrelation_motivates_differencing() {
        // The paper differences job power series "due to its
        // auto-correlated nature": a raised-cosine power profile is highly
        // autocorrelated, its first difference much less so.
        let power: Vec<f64> = (0..1000)
            .map(|i| 5e6 + 2e6 * (2.0 * std::f64::consts::PI * i as f64 / 20.0).cos())
            .collect();
        let lag_raw = decorrelation_lag(&power, 0.5, 100).unwrap();
        let diff: Vec<f64> = power.windows(2).map(|w| w[1] - w[0]).collect();
        let lag_diff = decorrelation_lag(&diff, 0.5, 100).unwrap();
        assert!(
            lag_diff <= lag_raw,
            "differencing must not lengthen correlation ({lag_diff} vs {lag_raw})"
        );
    }

    #[test]
    fn autocorrelation_degenerate() {
        assert!(autocorrelation(&[1.0], 3).iter().all(|x| x.is_nan()));
        assert!(autocorrelation(&[2.0; 10], 3).iter().all(|x| x.is_nan()));
    }

    #[test]
    fn rolling_series_wrapper() {
        let s = Series::new(0.0, 10.0, vec![1.0, 2.0, 3.0, 4.0]);
        let r = rolling_mean_series(&s, 20.0);
        assert_eq!(r.values(), &[1.0, 1.5, 2.5, 3.5]);
        assert_eq!(r.dt(), 10.0);
    }

    /// Reference window statistics from a fresh Welford pass.
    fn window_reference(values: &[f64], window: usize, end: usize) -> WindowStats {
        let start = end.saturating_sub(window);
        let mut w = Welford::new();
        for &v in &values[start..end] {
            w.push(v);
        }
        w.finish()
    }

    #[test]
    fn rolling_stats_matches_direct_recompute() {
        // Mix of drifts, spikes and NaN dropouts.
        let values: Vec<f64> = (0..300)
            .map(|i| {
                if i % 37 == 0 {
                    f64::NAN
                } else {
                    5e6 + 1e5 * (i as f64 * 0.7).sin() + if i % 53 == 0 { 2e6 } else { 0.0 }
                }
            })
            .collect();
        for window in [1usize, 2, 7, 64] {
            let mut rs = RollingStats::new(window);
            for (i, &v) in values.iter().enumerate() {
                rs.push(v);
                assert_eq!(rs.len(), (i + 1).min(window));
                let got = rs.stats();
                let want = window_reference(&values, window, i + 1);
                assert_eq!(got.count, want.count, "window {window} at {i}");
                if want.count > 0 {
                    assert_eq!(got.min.to_bits(), want.min.to_bits());
                    assert_eq!(got.max.to_bits(), want.max.to_bits());
                    assert!(
                        (got.mean - want.mean).abs() <= 1e-6 * want.mean.abs().max(1.0),
                        "mean {} vs {}",
                        got.mean,
                        want.mean
                    );
                    assert!(
                        (got.std - want.std).abs() <= 1e-3 * want.std.abs().max(1.0),
                        "std {} vs {}",
                        got.std,
                        want.std
                    );
                }
            }
        }
    }

    #[test]
    fn rolling_stats_memory_is_window_bounded() {
        let mut rs = RollingStats::new(16);
        for i in 0..10_000 {
            rs.push(i as f64);
        }
        assert_eq!(rs.len(), 16);
        let s = rs.stats();
        assert_eq!(s.min, 9984.0);
        assert_eq!(s.max, 9999.0);
    }

    #[test]
    fn rolling_sketch_refreshes_distribution_estimators() {
        let mut sk = RollingSketch::new(100);
        assert!(sk.ecdf().is_none());
        assert!(sk.percentile(0.5).is_nan());
        for i in 0..250 {
            sk.push(i as f64);
            sk.push(f64::NAN); // skipped, carries no information
        }
        // Only the last 100 finite samples (150..250) are retained.
        assert_eq!(sk.len(), 100);
        let p50 = sk.percentile(0.5);
        assert!((150.0..250.0).contains(&p50), "p50 {p50}");
        let kde = sk.kde().unwrap();
        let (grid, dens) = kde.grid(64, 0.1);
        assert_eq!(grid.len(), 64);
        assert!(dens.iter().all(|d| d.is_finite()));
    }
}
