//! Power usage effectiveness (PUE) and energy integration.
//!
//! PUE = total facility power / IT equipment power; a value close to 1.0
//! indicates an efficient data center (paper footnote 2). Summit's 2020
//! average was 1.11, rising to 1.22 in summer and briefly 1.3 during the
//! February cooling-tower maintenance (Section 4.1).

use crate::series::Series;
use serde::{Deserialize, Serialize};

/// Computes instantaneous PUE from facility and IT power (both in watts).
/// Returns NaN for non-positive IT power (idle meter dropout) and clamps
/// nothing — overly small facility readings (< IT) are reported as-is so
/// data errors stay visible.
pub fn pue(facility_w: f64, it_w: f64) -> f64 {
    if !facility_w.is_finite() || !it_w.is_finite() || it_w <= 0.0 {
        return f64::NAN;
    }
    facility_w / it_w
}

/// Element-wise PUE series from aligned facility-power and IT-power series.
///
/// # Panics
/// If the series are misaligned.
pub fn pue_series(facility: &Series, it: &Series) -> Series {
    assert_eq!(facility.dt(), it.dt(), "dt mismatch");
    assert_eq!(facility.len(), it.len(), "length mismatch");
    let values = facility
        .values()
        .iter()
        .zip(it.values())
        .map(|(&f, &i)| pue(f, i))
        .collect();
    Series::new(facility.t0(), facility.dt(), values)
}

/// Integrates a power series (watts) into total energy (joules) using the
/// rectangle rule (each sample holds for `dt`). NaN samples contribute
/// nothing; the covered (non-NaN) duration is also returned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyIntegral {
    /// Total energy in joules.
    pub energy_j: f64,
    /// Seconds of valid (finite) samples integrated.
    pub covered_s: f64,
    /// Seconds of missing (NaN) samples skipped.
    pub missing_s: f64,
}

impl EnergyIntegral {
    /// Mean power over the covered duration (W); NaN if nothing covered.
    pub fn mean_power_w(&self) -> f64 {
        if self.covered_s <= 0.0 {
            f64::NAN
        } else {
            self.energy_j / self.covered_s
        }
    }

    /// Energy in megawatt-hours.
    pub fn energy_mwh(&self) -> f64 {
        self.energy_j / 3.6e9
    }
}

/// Integrates a power series into energy.
pub fn integrate_energy(power: &Series) -> EnergyIntegral {
    let dt = power.dt();
    let mut energy = 0.0;
    let mut covered = 0.0;
    let mut missing = 0.0;
    for &p in power.values() {
        if p.is_finite() {
            energy += p * dt;
            covered += dt;
        } else {
            missing += dt;
        }
    }
    EnergyIntegral {
        energy_j: energy,
        covered_s: covered,
        missing_s: missing,
    }
}

/// Time-weighted average PUE over a window: integral of facility power
/// divided by integral of IT power (the correct way to average a ratio).
pub fn average_pue(facility: &Series, it: &Series) -> f64 {
    let ef = integrate_energy(facility);
    let ei = integrate_energy(it);
    if ei.energy_j <= 0.0 {
        return f64::NAN;
    }
    ef.energy_j / ei.energy_j
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn pue_point_values() {
        assert!((pue(11.1e6, 10.0e6) - 1.11).abs() < 1e-12);
        assert!(pue(1.0, 0.0).is_nan());
        assert!(pue(f64::NAN, 1.0).is_nan());
    }

    #[test]
    fn pue_series_elementwise() {
        let fac = Series::new(0.0, 1.0, vec![12.0, 11.0, f64::NAN]);
        let it = Series::new(0.0, 1.0, vec![10.0, 10.0, 10.0]);
        let p = pue_series(&fac, &it);
        assert!((p.values()[0] - 1.2).abs() < 1e-12);
        assert!((p.values()[1] - 1.1).abs() < 1e-12);
        assert!(p.values()[2].is_nan());
    }

    #[test]
    fn energy_integration() {
        // 1 MW for 1 hour at 10 s sampling = 1 MWh.
        let n = 360;
        let s = Series::new(0.0, 10.0, vec![1e6; n]);
        let e = integrate_energy(&s);
        assert!((e.energy_j - 3.6e9).abs() < 1.0);
        assert!((e.energy_mwh() - 1.0).abs() < 1e-9);
        assert_eq!(e.covered_s, 3600.0);
        assert_eq!(e.missing_s, 0.0);
        assert!((e.mean_power_w() - 1e6).abs() < 1e-6);
    }

    #[test]
    fn energy_integration_skips_nan() {
        let s = Series::new(0.0, 1.0, vec![100.0, f64::NAN, 100.0]);
        let e = integrate_energy(&s);
        assert_eq!(e.energy_j, 200.0);
        assert_eq!(e.covered_s, 2.0);
        assert_eq!(e.missing_s, 1.0);
    }

    #[test]
    fn energy_additivity() {
        let s = Series::new(0.0, 1.0, (0..100).map(|i| i as f64).collect());
        let whole = integrate_energy(&s).energy_j;
        let a = integrate_energy(&s.window(0.0, 50.0)).energy_j;
        let b = integrate_energy(&s.window(50.0, 100.0)).energy_j;
        assert!((whole - (a + b)).abs() < 1e-9);
    }

    #[test]
    fn average_pue_is_energy_weighted() {
        // Hour 1: IT 10 MW, facility 11 MW. Hour 2: IT 2 MW, facility 3 MW.
        // Energy-weighted PUE = 14/12 ≈ 1.1667, not (1.1 + 1.5)/2 = 1.3.
        let fac = Series::new(0.0, 3600.0, vec![11e6, 3e6]);
        let it = Series::new(0.0, 3600.0, vec![10e6, 2e6]);
        let avg = average_pue(&fac, &it);
        assert!((avg - 14.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn average_pue_degenerate() {
        let z = Series::new(0.0, 1.0, vec![0.0]);
        assert!(average_pue(&z, &z).is_nan());
    }
}
