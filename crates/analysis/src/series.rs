//! Uniformly-sampled time series: container, resampling, differencing.
//!
//! All cluster- and job-level power/thermal analyses in the paper operate on
//! uniformly-sampled series (1 Hz raw, 10 s coarsened). This module provides
//! the container those analyses share, plus first differencing (the paper
//! differences each job's power series before the FFT because of its
//! auto-correlated nature, Section 4.2).

use serde::{Deserialize, Serialize};

/// A uniformly-sampled time series. `t0` is the epoch-seconds timestamp of
/// the first sample; `dt` the sampling interval in seconds.
///
/// ```
/// use summit_analysis::series::Series;
/// let power = Series::new(0.0, 10.0, vec![1.0e6, 2.0e6, 3.0e6]);
/// assert_eq!(power.at_time(15.0), 2.0e6);
/// assert_eq!(power.diff().values(), &[1.0e6, 1.0e6]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    t0: f64,
    dt: f64,
    values: Vec<f64>,
}

impl Series {
    /// Creates a series. `dt` must be positive.
    pub fn new(t0: f64, dt: f64, values: Vec<f64>) -> Self {
        assert!(dt > 0.0, "sampling interval must be positive, got {dt}");
        Self { t0, dt, values }
    }

    /// Creates an empty series with the given timing.
    pub fn empty(t0: f64, dt: f64) -> Self {
        Self::new(t0, dt, Vec::new())
    }

    /// First timestamp.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Sampling interval (seconds).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable sample values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Timestamp of sample `i`.
    pub fn time_at(&self, i: usize) -> f64 {
        self.t0 + i as f64 * self.dt
    }

    /// Timestamp just past the last sample.
    pub fn t_end(&self) -> f64 {
        self.t0 + self.values.len() as f64 * self.dt
    }

    /// Index of the sample covering timestamp `t`, if within range.
    pub fn index_of(&self, t: f64) -> Option<usize> {
        if t < self.t0 {
            return None;
        }
        let i = ((t - self.t0) / self.dt).floor() as usize;
        (i < self.values.len()).then_some(i)
    }

    /// Value at timestamp `t` (sample-and-hold), NaN if out of range.
    pub fn at_time(&self, t: f64) -> f64 {
        self.index_of(t).map_or(f64::NAN, |i| self.values[i])
    }

    /// Slices out the window `[t_start, t_end)` as a new series.
    /// Clamps to the available range.
    pub fn window(&self, t_start: f64, t_end: f64) -> Series {
        let start = (((t_start - self.t0) / self.dt).ceil().max(0.0)) as usize;
        let end =
            ((((t_end - self.t0) / self.dt).floor()).max(0.0) as usize).min(self.values.len());
        let start = start.min(end);
        Series::new(
            self.t0 + start as f64 * self.dt,
            self.dt,
            self.values[start..end].to_vec(),
        )
    }

    /// First difference: `y[i] = x[i+1] - x[i]` (length `n-1`).
    ///
    /// This is the de-trending step the paper applies before the FFT.
    pub fn diff(&self) -> Series {
        let values = self.values.windows(2).map(|w| w[1] - w[0]).collect();
        Series::new(self.t0 + self.dt, self.dt, values)
    }

    /// Downsamples by an integer factor, averaging each block (NaN-aware;
    /// a block of all-NaN yields NaN). This is how 1 Hz series become 10 s
    /// mean series.
    pub fn downsample_mean(&self, factor: usize) -> Series {
        assert!(factor >= 1, "downsample factor must be >= 1");
        if factor == 1 {
            return self.clone();
        }
        let values: Vec<f64> = self
            .values
            .chunks(factor)
            .map(|chunk| {
                let mut sum = 0.0;
                let mut n = 0u32;
                for &v in chunk {
                    if v.is_finite() {
                        sum += v;
                        n += 1;
                    }
                }
                if n == 0 {
                    f64::NAN
                } else {
                    sum / n as f64
                }
            })
            .collect();
        Series::new(self.t0, self.dt * factor as f64, values)
    }

    /// Element-wise sum of two aligned series (same t0/dt/len).
    ///
    /// # Panics
    /// If the series are not aligned.
    pub fn add(&self, other: &Series) -> Series {
        assert_eq!(self.dt, other.dt, "dt mismatch");
        assert_eq!(self.t0, other.t0, "t0 mismatch");
        assert_eq!(self.len(), other.len(), "length mismatch");
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a + b)
            .collect();
        Series::new(self.t0, self.dt, values)
    }

    /// Scales every sample by a constant.
    pub fn scale(&self, k: f64) -> Series {
        Series::new(
            self.t0,
            self.dt,
            self.values.iter().map(|v| v * k).collect(),
        )
    }

    /// Fraction of NaN samples — the paper's telemetry had documented gaps
    /// (missing cabinet, lost temperature data in spring 2020).
    pub fn missing_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let nan = self.values.iter().filter(|v| !v.is_finite()).count();
        nan as f64 / self.values.len() as f64
    }
}

/// Sums many aligned series into one (e.g. per-node power into cluster
/// power). NaN samples are treated as missing (skipped); a timestamp where
/// every series is missing yields NaN.
pub fn sum_aligned(series: &[&Series]) -> Option<Series> {
    let first = series.first()?;
    let len = first.len();
    for s in series {
        assert_eq!(s.dt(), first.dt(), "dt mismatch in sum_aligned");
        assert_eq!(s.len(), len, "length mismatch in sum_aligned");
    }
    let mut out = vec![0.0f64; len];
    let mut seen = vec![false; len];
    for s in series {
        for (i, &v) in s.values().iter().enumerate() {
            if v.is_finite() {
                out[i] += v;
                seen[i] = true;
            }
        }
    }
    for (o, s) in out.iter_mut().zip(&seen) {
        if !s {
            *o = f64::NAN;
        }
    }
    Some(Series::new(first.t0(), first.dt(), out))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Series::new(100.0, 10.0, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.time_at(2), 120.0);
        assert_eq!(s.t_end(), 130.0);
        assert_eq!(s.at_time(115.0), 2.0);
        assert!(s.at_time(99.0).is_nan());
        assert!(s.at_time(130.0).is_nan());
    }

    #[test]
    fn window_extraction() {
        let s = Series::new(0.0, 1.0, (0..10).map(|i| i as f64).collect());
        let w = s.window(3.0, 7.0);
        assert_eq!(w.values(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(w.t0(), 3.0);
        // Clamped windows.
        let w2 = s.window(-5.0, 100.0);
        assert_eq!(w2.len(), 10);
        let w3 = s.window(8.0, 8.0);
        assert!(w3.is_empty());
    }

    #[test]
    fn diff_reduces_length_by_one() {
        let s = Series::new(0.0, 1.0, vec![1.0, 4.0, 9.0, 16.0]);
        let d = s.diff();
        assert_eq!(d.values(), &[3.0, 5.0, 7.0]);
        assert_eq!(d.t0(), 1.0);
    }

    #[test]
    fn diff_removes_linear_trend() {
        let s = Series::new(0.0, 1.0, (0..100).map(|i| 3.0 * i as f64 + 7.0).collect());
        let d = s.diff();
        assert!(d.values().iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn downsample_mean_blocks() {
        let s = Series::new(0.0, 1.0, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
        let d = s.downsample_mean(2);
        assert_eq!(d.values(), &[2.0, 6.0, 9.0]);
        assert_eq!(d.dt(), 2.0);
    }

    #[test]
    fn downsample_mean_nan_aware() {
        let s = Series::new(0.0, 1.0, vec![1.0, f64::NAN, f64::NAN, f64::NAN]);
        let d = s.downsample_mean(2);
        assert_eq!(d.values()[0], 1.0);
        assert!(d.values()[1].is_nan());
    }

    #[test]
    fn add_and_scale() {
        let a = Series::new(0.0, 1.0, vec![1.0, 2.0]);
        let b = Series::new(0.0, 1.0, vec![10.0, 20.0]);
        assert_eq!(a.add(&b).values(), &[11.0, 22.0]);
        assert_eq!(a.scale(3.0).values(), &[3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_rejects_misaligned() {
        let a = Series::new(0.0, 1.0, vec![1.0]);
        let b = Series::new(0.0, 1.0, vec![1.0, 2.0]);
        a.add(&b);
    }

    #[test]
    fn sum_aligned_skips_missing() {
        let a = Series::new(0.0, 1.0, vec![1.0, f64::NAN, 3.0]);
        let b = Series::new(0.0, 1.0, vec![10.0, 20.0, f64::NAN]);
        let s = sum_aligned(&[&a, &b]).unwrap();
        assert_eq!(s.values()[0], 11.0);
        assert_eq!(s.values()[1], 20.0);
        assert_eq!(s.values()[2], 3.0);
    }

    #[test]
    fn sum_aligned_all_missing_is_nan() {
        let a = Series::new(0.0, 1.0, vec![f64::NAN]);
        let b = Series::new(0.0, 1.0, vec![f64::NAN]);
        let s = sum_aligned(&[&a, &b]).unwrap();
        assert!(s.values()[0].is_nan());
    }

    #[test]
    fn sum_aligned_empty_input() {
        assert!(sum_aligned(&[]).is_none());
    }

    #[test]
    fn missing_fraction_counts_nan() {
        let s = Series::new(0.0, 1.0, vec![1.0, f64::NAN, 3.0, f64::NAN]);
        assert_eq!(s.missing_fraction(), 0.5);
        assert_eq!(Series::empty(0.0, 1.0).missing_fraction(), 0.0);
    }
}
