//! Rising/falling power-edge detection (paper Section 4.2, Figures 10/11).
//!
//! The paper defines a rising or falling edge as a change in power of more
//! than **868 W averaged across the nodes in the job** over one 10-second
//! interval — at full system scale (4,608 nodes) that is a 4 MW step. The
//! duration of an edge is "the time from the start of the rising edge to
//! the end time where power has returned back 80 % from its peak to its
//! initial power". This module implements that exact definition plus the
//! 1 MW amplitude-class binning used for the Figure 11 snapshots.

use crate::series::Series;
use serde::{Deserialize, Serialize};

/// The per-node edge threshold from the paper: 868 W per node per
/// 10-second interval (4 MW at 4,608 nodes).
pub const EDGE_THRESHOLD_W_PER_NODE: f64 = 868.0;

/// Direction of a detected edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Power stepped up.
    Rising,
    /// Power stepped down.
    Falling,
}

/// A detected power edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Rising or falling.
    pub kind: EdgeKind,
    /// Index in the source series where the step begins.
    pub start_index: usize,
    /// Timestamp of the step start.
    pub start_time: f64,
    /// Power before the step (W).
    pub initial_power: f64,
    /// Signed one-interval power change that triggered detection (W).
    pub step: f64,
    /// Index of the extremum reached after the step.
    pub peak_index: usize,
    /// Power at the extremum (W).
    pub peak_power: f64,
    /// Seconds from start until power returned 80 % of the way from the
    /// peak back to the initial power; `None` if it never returned within
    /// the series (the edge out-lives the observation window).
    pub duration_s: Option<f64>,
}

impl Edge {
    /// Unsigned peak-to-initial amplitude (W).
    pub fn amplitude(&self) -> f64 {
        (self.peak_power - self.initial_power).abs()
    }
}

/// Detects all rising and falling edges in `power` using an absolute
/// one-interval threshold in watts.
///
/// ```
/// use summit_analysis::{series::Series, edges::{detect_edges, EdgeKind}};
/// let s = Series::new(0.0, 10.0, vec![1e6, 5e6, 5e6, 1e6]);
/// let edges = detect_edges(&s, 2e6);
/// assert_eq!(edges.len(), 2);
/// assert_eq!(edges[0].kind, EdgeKind::Rising);
/// ```
///
/// Consecutive over-threshold intervals in the same direction are merged
/// into a single edge (a 2-interval ramp is one edge, not two). NaN gaps
/// break edge tracking.
pub fn detect_edges(power: &Series, threshold_w: f64) -> Vec<Edge> {
    assert!(threshold_w > 0.0, "edge threshold must be positive");
    let v = power.values();
    let mut edges = Vec::new();
    let mut i = 0;
    while i + 1 < v.len() {
        let step = v[i + 1] - v[i];
        if !step.is_finite() || step.abs() < threshold_w {
            i += 1;
            continue;
        }
        let kind = if step > 0.0 {
            EdgeKind::Rising
        } else {
            EdgeKind::Falling
        };
        let start_index = i;
        let initial = v[i];

        // Merge consecutive same-direction over-threshold intervals.
        let mut j = i + 1;
        while j + 1 < v.len() {
            let s = v[j + 1] - v[j];
            if !s.is_finite() || s.abs() < threshold_w || (s > 0.0) != (step > 0.0) {
                break;
            }
            j += 1;
        }

        // Track the extremum after the step and the 80 %-return point.
        let mut peak_index = j;
        let mut peak = v[j];
        let mut duration = None;
        let mut k = j;
        while k < v.len() {
            let x = v[k];
            if x.is_finite() {
                let more_extreme = match kind {
                    EdgeKind::Rising => x > peak,
                    EdgeKind::Falling => x < peak,
                };
                if more_extreme {
                    peak = x;
                    peak_index = k;
                }
                // "Returned back 80% from its peak to its initial power":
                // within 20% of the initial level, measured from the peak.
                let return_level = peak - 0.8 * (peak - initial);
                let returned = match kind {
                    EdgeKind::Rising => x <= return_level && k > peak_index.min(j),
                    EdgeKind::Falling => x >= return_level && k > peak_index.min(j),
                };
                if returned && k > j {
                    duration = Some(power.time_at(k) - power.time_at(start_index));
                    break;
                }
            }
            k += 1;
        }

        edges.push(Edge {
            kind,
            start_index,
            start_time: power.time_at(start_index),
            initial_power: initial,
            step: v[j] - v[start_index],
            peak_index,
            peak_power: peak,
            duration_s: duration,
        });

        // Resume scanning after the merged step (not after the full
        // return window — later independent swings must still be seen).
        i = j;
    }
    edges
}

/// State of an edge whose ramp is still being merged (consecutive
/// same-direction over-threshold steps).
#[derive(Debug, Clone, Copy)]
struct MergeState {
    start_index: usize,
    initial: f64,
    rising: bool,
}

/// An edge past its ramp, still tracking its extremum and 80 %-return.
#[derive(Debug, Clone, Copy)]
struct ActiveReturn {
    id: u64,
    kind: EdgeKind,
    start_index: usize,
    initial: f64,
    j: usize,
    peak: f64,
    peak_index: usize,
}

/// A detected edge awaiting drain, in trigger order.
#[derive(Debug, Clone)]
struct PendingEdge {
    id: u64,
    edge: Edge,
    resolved: bool,
}

/// Incremental replacement for [`detect_edges`]: feed samples one at a
/// time and obtain — for the same series — the exact same edge list,
/// without retaining the series.
///
/// [`detect_edges`] interleaves two scans: a step scanner that merges
/// consecutive same-direction over-threshold steps into one ramp, and a
/// per-edge return tracker that follows the extremum until power comes
/// back 80 % toward the initial level. Because the scanner resumes at
/// the ramp end (not the return point), return-tracking regions overlap
/// later ramps, so several edges can be "open" at once. This detector
/// keeps the scanner state plus a list of active unreturned edges, all
/// advanced per pushed value; memory is bounded by the number of
/// simultaneously unreturned edges, never the stream length.
#[derive(Debug, Clone)]
pub struct OnlineEdgeDetector {
    t0: f64,
    dt: f64,
    threshold_w: f64,
    next_index: usize,
    prev: Option<f64>,
    merging: Option<MergeState>,
    active: Vec<ActiveReturn>,
    pending: std::collections::VecDeque<PendingEdge>,
    next_id: u64,
    detected: usize,
}

impl OnlineEdgeDetector {
    /// Creates a detector for a stream sampled at `t0 + k * dt`, using
    /// an absolute one-interval threshold in watts (must be positive,
    /// as for [`detect_edges`]).
    pub fn new(t0: f64, dt: f64, threshold_w: f64) -> Self {
        Self {
            t0,
            dt,
            threshold_w,
            next_index: 0,
            prev: None,
            merging: None,
            active: Vec::new(),
            pending: std::collections::VecDeque::new(),
            next_id: 0,
            detected: 0,
        }
    }

    /// Edges triggered so far (including ones still merging/unreturned).
    pub fn detected(&self) -> usize {
        self.detected
    }

    /// Edges currently tracking their 80 %-return (live gauge).
    pub fn tracking(&self) -> usize {
        self.active.len() + usize::from(self.merging.is_some())
    }

    fn time_at(&self, k: usize) -> f64 {
        self.t0 + k as f64 * self.dt
    }

    fn sync_pending(&mut self, id: u64, peak: f64, peak_index: usize, duration_s: Option<f64>) {
        if let Some(p) = self.pending.iter_mut().find(|p| p.id == id) {
            p.edge.peak_power = peak;
            p.edge.peak_index = peak_index;
            if duration_s.is_some() {
                p.edge.duration_s = duration_s;
                p.resolved = true;
            }
        }
    }

    /// Ends the current ramp at index `j` (value `vj`), recording the
    /// edge and moving it into return tracking.
    fn finalize_merge(&mut self, j: usize, vj: f64) {
        if let Some(m) = self.merging.take() {
            let id = self.next_id;
            self.next_id += 1;
            let kind = if m.rising {
                EdgeKind::Rising
            } else {
                EdgeKind::Falling
            };
            self.pending.push_back(PendingEdge {
                id,
                resolved: false,
                edge: Edge {
                    kind,
                    start_index: m.start_index,
                    start_time: self.time_at(m.start_index),
                    initial_power: m.initial,
                    step: vj - m.initial,
                    peak_index: j,
                    peak_power: vj,
                    duration_s: None,
                },
            });
            self.active.push(ActiveReturn {
                id,
                kind,
                start_index: m.start_index,
                initial: m.initial,
                j,
                peak: vj,
                peak_index: j,
            });
        }
    }

    /// Advances every active edge's extremum/return tracking with the
    /// value at index `k` — the batch tracker's loop body verbatim.
    fn track(&mut self, k: usize, x: f64) {
        if !x.is_finite() {
            return;
        }
        let (t0, dt) = (self.t0, self.dt);
        let t_k = t0 + k as f64 * dt;
        let mut resolved: Vec<(u64, f64, usize, f64)> = Vec::new();
        self.active.retain_mut(|a| {
            let more_extreme = match a.kind {
                EdgeKind::Rising => x > a.peak,
                EdgeKind::Falling => x < a.peak,
            };
            if more_extreme {
                a.peak = x;
                a.peak_index = k;
            }
            let return_level = a.peak - 0.8 * (a.peak - a.initial);
            let crossed = match a.kind {
                EdgeKind::Rising => x <= return_level,
                EdgeKind::Falling => x >= return_level,
            };
            if crossed && k > a.peak_index.min(a.j) && k > a.j {
                let duration = t_k - (t0 + a.start_index as f64 * dt);
                resolved.push((a.id, a.peak, a.peak_index, duration));
                false
            } else {
                true
            }
        });
        for (id, peak, peak_index, duration) in resolved {
            self.sync_pending(id, peak, peak_index, Some(duration));
        }
    }

    /// Pushes the next sample of the stream.
    pub fn push(&mut self, v: f64) {
        let k = self.next_index;
        self.next_index += 1;
        let Some(p) = self.prev else {
            self.prev = Some(v);
            return;
        };
        let step = v - p;
        let over = step.is_finite() && step.abs() >= self.threshold_w;
        if let Some(m) = self.merging {
            if over && (step > 0.0) == m.rising {
                // Ramp continues: the batch merge loop consumes this
                // step; no trigger check, but older edges still track.
                self.track(k, v);
                self.prev = Some(v);
                return;
            }
            // Ramp ends at j = k-1 with v[j] = p.
            self.finalize_merge(k - 1, p);
        }
        if over {
            // Fresh trigger on this step (after a ramp break this can
            // only be the opposite direction, exactly as in the batch
            // scan resuming at i = j).
            self.merging = Some(MergeState {
                start_index: k - 1,
                initial: p,
                rising: step > 0.0,
            });
            self.detected += 1;
        }
        self.track(k, v);
        self.prev = Some(v);
    }

    /// Removes and returns every leading edge whose 80 %-return has
    /// resolved, preserving trigger order. Edges still tracking (or
    /// triggered later than one still tracking) stay queued so the
    /// drained prefix is always final.
    pub fn drain_resolved(&mut self) -> Vec<Edge> {
        let mut out = Vec::new();
        while self.pending.front().is_some_and(|p| p.resolved) {
            if let Some(p) = self.pending.pop_front() {
                out.push(p.edge);
            }
        }
        out
    }

    /// Flushes the stream end: an in-flight ramp ends at the last
    /// sample, unreturned edges keep `duration_s: None` with their
    /// final extremum — exactly the batch behaviour at the series end.
    /// Returns all remaining edges in trigger order.
    pub fn finish(mut self) -> Vec<Edge> {
        if self.merging.is_some() {
            if let Some(p) = self.prev {
                self.finalize_merge(self.next_index.saturating_sub(1), p);
            }
        }
        let active = std::mem::take(&mut self.active);
        for a in active {
            self.sync_pending(a.id, a.peak, a.peak_index, None);
        }
        self.pending.into_iter().map(|p| p.edge).collect()
    }
}

/// Detects edges with the paper's per-node scaling: threshold is
/// `868 W x node_count` per 10-second interval.
pub fn detect_edges_for_job(power: &Series, node_count: usize) -> Vec<Edge> {
    assert!(node_count > 0, "job must have at least one node");
    detect_edges(power, EDGE_THRESHOLD_W_PER_NODE * node_count as f64)
}

/// Bins an edge into a 1 MW amplitude class (1 => [0.5, 1.5) MW, etc.),
/// the Figure 11 grouping. Returns `None` below 0.5 MW.
pub fn amplitude_class_mw(edge: &Edge) -> Option<u32> {
    let mw = edge.amplitude() / 1e6;
    let class = (mw + 0.5).floor() as i64;
    // Checked narrowing: classes above u32::MAX cannot occur for real
    // amplitudes, and a negative class means "below 0.5 MW" anyway.
    u32::try_from(class).ok().filter(|&c| c >= 1)
}

/// Summary of edge behaviour across one job (one row of the population
/// behind Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobEdgeStats {
    /// Total edges detected.
    pub edge_count: usize,
    /// Rising edges.
    pub rising_count: usize,
    /// Falling edges.
    pub falling_count: usize,
    /// Mean duration of edges that completed within the window (s).
    pub mean_duration_s: f64,
    /// Largest amplitude seen (W).
    pub max_amplitude_w: f64,
}

/// Computes per-job edge statistics.
pub fn job_edge_stats(power: &Series, node_count: usize) -> JobEdgeStats {
    let edges = detect_edges_for_job(power, node_count);
    let rising = edges.iter().filter(|e| e.kind == EdgeKind::Rising).count();
    let durations: Vec<f64> = edges.iter().filter_map(|e| e.duration_s).collect();
    let mean_duration = if durations.is_empty() {
        f64::NAN
    } else {
        durations.iter().sum::<f64>() / durations.len() as f64
    };
    let max_amp = edges.iter().map(|e| e.amplitude()).fold(0.0f64, f64::max);
    JobEdgeStats {
        edge_count: edges.len(),
        rising_count: rising,
        falling_count: edges.len() - rising,
        mean_duration_s: mean_duration,
        max_amplitude_w: max_amp,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    /// Builds a 10 s-interval series from values.
    fn series(values: &[f64]) -> Series {
        Series::new(0.0, 10.0, values.to_vec())
    }

    #[test]
    fn detects_simple_rising_edge() {
        // 1 MW baseline, step to 5 MW, hold, return to baseline.
        let s = series(&[1e6, 1e6, 5e6, 5e6, 5e6, 1e6, 1e6]);
        let edges = detect_edges(&s, 2e6);
        assert_eq!(edges.len(), 2); // the rise and the fall
        let rise = &edges[0];
        assert_eq!(rise.kind, EdgeKind::Rising);
        assert_eq!(rise.start_index, 1);
        assert_eq!(rise.initial_power, 1e6);
        assert_eq!(rise.peak_power, 5e6);
        assert!((rise.amplitude() - 4e6).abs() < 1.0);
        // Returned to baseline at index 5: duration = (5-1)*10 = 40 s.
        assert_eq!(rise.duration_s, Some(40.0));
        assert_eq!(edges[1].kind, EdgeKind::Falling);
    }

    #[test]
    fn merges_multi_interval_ramp() {
        // Ramp up over two big steps -> one edge.
        let s = series(&[1e6, 3e6, 6e6, 6e6, 6e6, 1e6]);
        let edges = detect_edges(&s, 1.5e6);
        let rising: Vec<_> = edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Rising)
            .collect();
        assert_eq!(rising.len(), 1, "ramp should merge into one rising edge");
        assert_eq!(rising[0].peak_power, 6e6);
    }

    #[test]
    fn below_threshold_is_quiet() {
        let s = series(&[1e6, 1.5e6, 1.2e6, 1.4e6]);
        assert!(detect_edges(&s, 2e6).is_empty());
    }

    #[test]
    fn unreturned_edge_has_no_duration() {
        let s = series(&[1e6, 5e6, 5e6, 5e6]);
        let edges = detect_edges(&s, 2e6);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].duration_s, None);
    }

    #[test]
    fn falling_edge_detected() {
        let s = series(&[5e6, 5e6, 1e6, 1e6, 5e6]);
        let edges = detect_edges(&s, 2e6);
        assert_eq!(edges[0].kind, EdgeKind::Falling);
        assert_eq!(edges[0].peak_power, 1e6);
        // Returns when power rises back toward 5e6 at index 4.
        assert!(edges[0].duration_s.is_some());
    }

    #[test]
    fn per_node_threshold_scaling() {
        // Paper: 4,608-node job needs ≥ 4 MW to count as an edge.
        let full_system = 4608;
        let s_small = series(&[1e6, 4.5e6, 4.5e6, 1e6]); // 3.5 MW step
        assert!(detect_edges_for_job(&s_small, full_system).is_empty());
        let s_big = series(&[1e6, 5.5e6, 5.5e6, 1e6]); // 4.5 MW step
        assert_eq!(detect_edges_for_job(&s_big, full_system).len(), 2);
        // The same 3.5 MW step IS an edge for a 2,000-node job.
        assert!(!detect_edges_for_job(&s_small, 2000).is_empty());
    }

    #[test]
    fn threshold_matches_paper_full_system() {
        // 868 W * 4608 nodes ≈ 4.0 MW
        let t = EDGE_THRESHOLD_W_PER_NODE * 4608.0;
        assert!((t - 4e6).abs() < 5e4, "threshold {t}");
    }

    #[test]
    fn amplitude_class_binning() {
        let mk = |amp: f64| Edge {
            kind: EdgeKind::Rising,
            start_index: 0,
            start_time: 0.0,
            initial_power: 0.0,
            step: amp,
            peak_index: 1,
            peak_power: amp,
            duration_s: None,
        };
        assert_eq!(amplitude_class_mw(&mk(1.0e6)), Some(1));
        assert_eq!(amplitude_class_mw(&mk(1.4e6)), Some(1));
        assert_eq!(amplitude_class_mw(&mk(1.6e6)), Some(2));
        assert_eq!(amplitude_class_mw(&mk(7.2e6)), Some(7));
        assert_eq!(amplitude_class_mw(&mk(0.2e6)), None);
    }

    #[test]
    fn nan_gap_breaks_tracking() {
        let s = series(&[1e6, f64::NAN, 5e6, 5e6]);
        // The NaN interval yields a NaN step — no edge triggered by it.
        let edges = detect_edges(&s, 2e6);
        assert!(edges.is_empty());
    }

    #[test]
    fn job_edge_stats_counts() {
        let s = series(&[1e6, 5e6, 5e6, 1e6, 1e6, 5e6, 5e6, 1e6]);
        let stats = job_edge_stats(&s, 1000); // threshold 868 kW
        assert_eq!(stats.edge_count, 4);
        assert_eq!(stats.rising_count, 2);
        assert_eq!(stats.falling_count, 2);
        assert!((stats.max_amplitude_w - 4e6).abs() < 1.0);
        assert!(stats.mean_duration_s > 0.0);
    }

    #[test]
    fn quiet_job_stats() {
        let s = series(&[1e6; 20]);
        let stats = job_edge_stats(&s, 100);
        assert_eq!(stats.edge_count, 0);
        assert!(stats.mean_duration_s.is_nan());
        assert_eq!(stats.max_amplitude_w, 0.0);
    }

    fn assert_online_matches_batch(values: &[f64], threshold_w: f64) {
        let s = series(values);
        let reference = detect_edges(&s, threshold_w);
        let mut det = OnlineEdgeDetector::new(s.t0(), s.dt(), threshold_w);
        let mut streamed = Vec::new();
        for &v in values {
            det.push(v);
            streamed.extend(det.drain_resolved());
        }
        assert_eq!(det.detected(), reference.len(), "trigger count");
        streamed.extend(det.finish());
        assert_eq!(streamed.len(), reference.len(), "edge count");
        for (a, b) in streamed.iter().zip(&reference) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.start_index, b.start_index);
            assert_eq!(a.start_time.to_bits(), b.start_time.to_bits());
            assert_eq!(a.initial_power.to_bits(), b.initial_power.to_bits());
            assert_eq!(a.step.to_bits(), b.step.to_bits());
            assert_eq!(a.peak_index, b.peak_index);
            assert_eq!(a.peak_power.to_bits(), b.peak_power.to_bits());
            assert_eq!(
                a.duration_s.map(f64::to_bits),
                b.duration_s.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn online_detector_matches_batch_on_handcrafted_series() {
        let cases: &[&[f64]] = &[
            &[1e6, 1e6, 5e6, 5e6, 5e6, 1e6, 1e6],
            &[1e6, 3e6, 6e6, 6e6, 6e6, 1e6],
            &[1e6, 1.5e6, 1.2e6, 1.4e6],
            &[1e6, 5e6, 5e6, 5e6],
            &[5e6, 5e6, 1e6, 1e6, 5e6],
            &[1e6, f64::NAN, 5e6, 5e6],
            &[1e6, 5e6, f64::NAN, 1e6, 1e6],
            &[1e6, 5e6, 1e6, 5e6, 1e6, 5e6],
            // Slow decay: the rise's return overlaps the later fall.
            &[1e6, 9e6, 8e6, 4.5e6, 4.4e6, 1.2e6, 1.1e6],
            &[1e6, 5e6, 5e6, 1.8e6, 1.8e6],
            &[],
            &[3e6],
        ];
        for values in cases {
            assert_online_matches_batch(values, 2e6);
        }
    }

    #[test]
    fn online_detector_matches_batch_on_noisy_walk() {
        // Deterministic pseudo-random walk with occasional large jumps
        // and NaN dropouts, exercising ramp merges, overlapping return
        // windows and end-of-stream truncation.
        let mut state = 0x5EEDu64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut level = 5e6;
        let mut values = Vec::new();
        for i in 0..400 {
            let u = rng();
            if u < 0.02 {
                values.push(f64::NAN);
                continue;
            }
            if u < 0.12 {
                level += (rng() - 0.5) * 8e6;
            } else {
                level += (rng() - 0.5) * 5e5;
            }
            level = level.clamp(0.0, 1.4e7);
            values.push(level);
            if i % 97 == 0 {
                level = 5e6; // hard reset = another step source
            }
        }
        assert_online_matches_batch(&values, 1.5e6);
    }

    #[test]
    fn online_detector_drains_resolved_prefix_only() {
        let mut det = OnlineEdgeDetector::new(0.0, 10.0, 2e6);
        for v in [1e6, 5e6, 5e6] {
            det.push(v);
        }
        // Rise is still tracking its return: nothing drains.
        assert!(det.drain_resolved().is_empty());
        assert_eq!(det.tracking(), 1);
        for v in [1e6, 1e6] {
            det.push(v);
        }
        let drained = det.drain_resolved();
        // Rise resolved; the fall it resolved on is still unreturned.
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].kind, EdgeKind::Rising);
        assert_eq!(drained[0].duration_s, Some(30.0));
        let rest = det.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].kind, EdgeKind::Falling);
        assert_eq!(rest[0].duration_s, None);
    }

    #[test]
    fn duration_uses_80_percent_return_not_full_return() {
        // Rise 1->5 MW; falls back only to 1.8 MW +=> that is exactly the
        // 80 % return level (5 - 0.8*4 = 1.8), so duration must be set.
        let s = series(&[1e6, 5e6, 5e6, 1.8e6, 1.8e6]);
        let edges = detect_edges(&s, 2e6);
        let rise = edges.iter().find(|e| e.kind == EdgeKind::Rising).unwrap();
        // Start at index 0, 80 % return reached at index 3 => 30 s.
        assert_eq!(rise.duration_s, Some(30.0));
    }
}
