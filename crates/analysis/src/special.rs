//! Special mathematical functions implemented from scratch.
//!
//! The analysis toolkit needs a small set of special functions — the error
//! function for Gaussian CDFs, the log-gamma function, and the regularized
//! incomplete beta function for Student-t p-values (Pearson correlation
//! significance, Figure 13 of the paper). All are implemented here with
//! double precision and validated against reference values in the tests.

/// Error function `erf(x)`, maximum absolute error below 1.2e-7.
///
/// Uses the Abramowitz & Stegun 7.1.26 rational approximation with the
/// sign-symmetry `erf(-x) = -erf(x)`.
pub fn erf(x: f64) -> f64 {
    // Handle non-finite inputs explicitly so downstream CDFs stay sane.
    if x.is_nan() {
        return f64::NAN;
    }
    if x.is_infinite() {
        return x.signum();
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Natural log of the gamma function, Lanczos approximation (g=7, n=9).
///
/// Accurate to ~15 significant digits for positive arguments; uses the
/// reflection formula for `x < 0.5`.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];

    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }

    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Domain error raised by the special functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecialFnError {
    /// A shape parameter that must be strictly positive was not.
    NonPositiveShape {
        /// The offending `a` parameter.
        a: f64,
        /// The offending `b` parameter.
        b: f64,
    },
    /// The evaluation point fell outside the function's domain.
    OutOfDomain {
        /// The offending argument.
        x: f64,
    },
}

impl std::fmt::Display for SpecialFnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonPositiveShape { a, b } => {
                write!(f, "shape parameters must be > 0 (got a={a}, b={b})")
            }
            Self::OutOfDomain { x } => write!(f, "argument x must be in [0, 1], got {x}"),
        }
    }
}

impl std::error::Error for SpecialFnError {}

/// Regularized incomplete beta function `I_x(a, b)`, with domain checks.
///
/// Computed via the continued-fraction expansion (Numerical Recipes
/// `betacf`), with the symmetry transform for fast convergence. Returns
/// [`SpecialFnError`] when `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn try_betai(a: f64, b: f64, x: f64) -> Result<f64, SpecialFnError> {
    if !(a > 0.0 && b > 0.0) {
        return Err(SpecialFnError::NonPositiveShape { a, b });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(SpecialFnError::OutOfDomain { x });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    Ok(if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b
    })
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Infallible convenience wrapper over [`try_betai`]: domain violations
/// (`a <= 0`, `b <= 0`, or `x` outside `[0, 1]`) yield NaN instead of an
/// error, matching the NaN-propagation convention of the rest of the
/// toolkit.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    try_betai(a, b, x).unwrap_or(f64::NAN)
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;

    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom.
///
/// `P(|T| > |t|) = I_{df/(df+t^2)}(df/2, 1/2)`.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    if t.is_nan() {
        return f64::NAN;
    }
    if t.is_infinite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    betai(0.5 * df, 0.5, x).clamp(0.0, 1.0)
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Acklam's rational approximation, refined by one Halley step against
/// [`normal_cdf`]; overall accuracy is limited by the erf approximation
/// (~2e-6 absolute), ample for confidence-interval work.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0, 1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the high-accuracy CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Critical value of the Student-t distribution for a two-sided interval.
///
/// Returns `t*` such that `P(|T| <= t*) = confidence`. Used for the 95 %
/// confidence envelopes on the Figure 11/12 snapshot superpositions.
/// Solved by bisection on the two-sided p-value.
pub fn student_t_critical(df: f64, confidence: f64) -> f64 {
    assert!(df > 0.0);
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1), got {confidence}"
    );
    let alpha = 1.0 - confidence;
    let (mut lo, mut hi) = (0.0_f64, 1e3_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_two_sided_p(mid, df) > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol,
            "expected {b} +/- {tol}, got {a} (diff {})",
            (a - b).abs()
        );
    }

    #[test]
    fn erf_reference_values() {
        // The A&S 7.1.26 approximation carries ~1.5e-7 absolute error.
        close(erf(0.0), 0.0, 2e-7);
        close(erf(0.5), 0.5204998778, 2e-7);
        close(erf(1.0), 0.8427007929, 2e-7);
        close(erf(2.0), 0.9953222650, 2e-7);
        close(erf(-1.0), -0.8427007929, 2e-7);
        close(erf(3.5), 0.999999257, 2e-7);
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            close(erf(-x), -erf(x), 1e-15);
        }
    }

    #[test]
    fn erf_handles_infinities() {
        assert_eq!(erf(f64::INFINITY), 1.0);
        assert_eq!(erf(f64::NEG_INFINITY), -1.0);
        assert!(erf(f64::NAN).is_nan());
    }

    #[test]
    fn normal_cdf_reference_values() {
        close(normal_cdf(0.0), 0.5, 1e-7);
        close(normal_cdf(1.0), 0.8413447461, 1e-6);
        close(normal_cdf(-1.96), 0.0249978951, 1e-6);
        close(normal_cdf(2.575), 0.9949897, 1e-5);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integer n
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0_f64).ln(), 1e-10);
        close(ln_gamma(11.0), (3628800.0_f64).ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Γ(3/2) = sqrt(π)/2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-10,
        );
    }

    #[test]
    fn betai_boundary_values() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_symmetric_case() {
        // I_x(a, a) at x = 0.5 is exactly 0.5.
        for &a in &[0.5, 1.0, 3.0, 10.0] {
            close(betai(a, a, 0.5), 0.5, 1e-10);
        }
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1, 1) = x (Beta(1,1) is uniform).
        for &x in &[0.1, 0.25, 0.7, 0.99] {
            close(betai(1.0, 1.0, x), x, 1e-10);
        }
    }

    #[test]
    fn betai_reference_value() {
        // scipy.special.betainc(2, 3, 0.4) = 0.5248
        close(betai(2.0, 3.0, 0.4), 0.5248, 1e-10);
    }

    #[test]
    fn t_test_p_values() {
        // For df → large, t = 1.96 should give p ≈ 0.05.
        close(student_t_two_sided_p(1.96, 10_000.0), 0.05, 1e-3);
        // scipy: 2*(1-t.cdf(2.0, 10)) = 0.07338...
        close(student_t_two_sided_p(2.0, 10.0), 0.073388, 1e-5);
        // t = 0 → p = 1.
        close(student_t_two_sided_p(0.0, 5.0), 1.0, 1e-12);
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for &p in &[0.001, 0.025, 0.5, 0.8, 0.975, 0.999] {
            close(normal_cdf(normal_quantile(p)), p, 1e-8);
        }
    }

    #[test]
    fn normal_quantile_reference() {
        close(normal_quantile(0.975), 1.959963985, 1e-5);
        close(normal_quantile(0.5), 0.0, 1e-6);
    }

    #[test]
    fn t_critical_large_df_approaches_normal() {
        close(student_t_critical(1e6, 0.95), 1.95996, 1e-3);
    }

    #[test]
    fn t_critical_reference() {
        // t_{0.975, 10} = 2.2281
        close(student_t_critical(10.0, 0.95), 2.2281, 1e-3);
        // t_{0.975, 3} = 3.1824
        close(student_t_critical(3.0, 0.95), 3.1824, 1e-3);
    }

    #[test]
    fn betai_rejects_out_of_range() {
        assert_eq!(
            try_betai(1.0, 1.0, 1.5),
            Err(SpecialFnError::OutOfDomain { x: 1.5 })
        );
        assert_eq!(
            try_betai(-1.0, 1.0, 0.5),
            Err(SpecialFnError::NonPositiveShape { a: -1.0, b: 1.0 })
        );
        // The infallible wrapper maps domain errors to NaN.
        assert!(betai(1.0, 1.0, 1.5).is_nan());
        assert!(betai(0.0, 1.0, 0.5).is_nan());
    }
}
