//! Empirical cumulative distribution functions.
//!
//! The paper leans heavily on CDFs: Figure 7 (job features for scheduling
//! classes 1/2 with an 80 % red-line), Figure 10 (edge counts and edge
//! durations per class). This module provides an exact ECDF with value and
//! percentile queries in `O(log n)`.

use serde::{Deserialize, Serialize};

/// An empirical CDF built from a sample.
///
/// ```
/// use summit_analysis::cdf::Ecdf;
/// let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(e.eval(2.0), 0.5);
/// assert_eq!(e.percentile(0.8), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    /// Sorted finite sample values.
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF, dropping NaNs. Returns `None` if no finite values.
    pub fn new(data: &[f64]) -> Option<Self> {
        let _obs = summit_obs::span("summit_analysis_cdf_build");
        let mut sorted: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(Self { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false — construction requires at least one sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x)` — fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the smallest sample value `v` such that `F(v) >= p`.
    ///
    /// This is the query behind the paper's "80 % of Class 2 jobs take
    /// almost up to 3 hours" style statements.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "percentile p must be in [0,1], got {p}"
        );
        if p == 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample value (NaN for an impossible empty sample — the
    /// constructor rejects empty input).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// Evaluates the CDF on a uniform grid of `points` x-values spanning
    /// the sample range; returns `(xs, fs)`. Useful for rendering the
    /// figure curves.
    pub fn curve(&self, points: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(points >= 2, "need at least two curve points");
        let lo = self.min();
        let hi = self.max();
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let xs: Vec<f64> = (0..points)
            .map(|i| lo + span * i as f64 / (points - 1) as f64)
            .collect();
        let fs = xs.iter().map(|&x| self.eval(x)).collect();
        (xs, fs)
    }

    /// Detects a "non-differentiable point at the maximum cumulative
    /// density" — a mass concentration at the sample maximum, the paper's
    /// signature of the Class-5 120-minute wall-limit (Section 4.2).
    /// Returns the fraction of samples within `tol` of the maximum.
    pub fn terminal_mass(&self, tol: f64) -> f64 {
        let hi = self.max();
        let count = self.sorted.iter().filter(|&&v| v >= hi - tol).count();
        count as f64 / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn ecdf_step_values() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn ecdf_drops_nan() {
        let e = Ecdf::new(&[f64::NAN, 1.0, 2.0]).unwrap();
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn ecdf_none_for_empty() {
        assert!(Ecdf::new(&[]).is_none());
        assert!(Ecdf::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn percentile_inverse_of_eval() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let e = Ecdf::new(&data).unwrap();
        assert_eq!(e.percentile(0.8), 80.0);
        assert_eq!(e.percentile(1.0), 100.0);
        assert_eq!(e.percentile(0.01), 1.0);
        assert_eq!(e.percentile(0.0), 1.0);
    }

    #[test]
    fn percentile_roundtrip_property() {
        let data: Vec<f64> = (0..57).map(|i| (i as f64 * 1.618).fract() * 10.0).collect();
        let e = Ecdf::new(&data).unwrap();
        for i in 1..=20 {
            let p = i as f64 / 20.0;
            let v = e.percentile(p);
            assert!(
                e.eval(v) >= p - 1e-12,
                "F(percentile(p)) >= p violated at p={p}"
            );
        }
    }

    #[test]
    fn curve_is_monotone() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64).collect();
        let e = Ecdf::new(&data).unwrap();
        let (_, fs) = e.curve(64);
        for w in fs.windows(2) {
            assert!(w[1] >= w[0], "CDF curve must be non-decreasing");
        }
        assert_eq!(*fs.last().unwrap(), 1.0);
    }

    #[test]
    fn terminal_mass_detects_wall_limit() {
        // Simulate class-5 walltimes clipped at 120 min: heavy mass at max.
        let mut data: Vec<f64> = (0..80).map(|i| (i % 100) as f64).collect();
        data.extend(std::iter::repeat_n(120.0, 20));
        let e = Ecdf::new(&data).unwrap();
        assert!((e.terminal_mass(1e-9) - 0.2).abs() < 1e-12);
    }
}
