//! Z-score thermal-extremity analysis (paper Section 6.1, Figure 15).
//!
//! "To account for workload specificity of a job encountering an error, we
//! considered temperature at the offending GPU core in the context of
//! temperature distribution across all GPUs within the job at the moment
//! of failure. We used the z-score, the number of standard deviations
//! above the mean, as a metric of thermal extremity that is independent of
//! the associated workload."

use serde::{Deserialize, Serialize};

/// Z-score of `x` within a population given its mean and std.
/// NaN if std is not positive or any input is non-finite.
pub fn zscore(x: f64, mean: f64, std: f64) -> f64 {
    if !x.is_finite() || !mean.is_finite() || !std.is_finite() || std <= 0.0 {
        return f64::NAN;
    }
    (x - mean) / std
}

/// Computes the z-score of `x` against the empirical distribution of
/// `population` (NaNs in the population are dropped). Returns NaN when the
/// population is degenerate (fewer than 2 finite values or zero spread).
pub fn zscore_in(x: f64, population: &[f64]) -> f64 {
    let v: Vec<f64> = population
        .iter()
        .copied()
        .filter(|p| p.is_finite())
        .collect();
    if v.len() < 2 {
        return f64::NAN;
    }
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    let var = v.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / (n - 1.0);
    zscore(x, mean, var.sqrt())
}

/// A labelled extremity observation (one failure event).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Extremity {
    /// The observed value (e.g. GPU core temperature at failure, °C).
    pub value: f64,
    /// Z-score within the in-job population at the failure moment.
    pub z: f64,
}

/// Distribution-level summary of the extremity of a set of failures —
/// what Figure 15 plots per failure type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtremitySummary {
    /// Number of finite z-scores.
    pub count: usize,
    /// Mean z-score.
    pub mean_z: f64,
    /// Median z-score.
    pub median_z: f64,
    /// Fisher-Pearson skewness of the z distribution. The paper's key
    /// finding: no failure type is left-skewed (overheating would produce
    /// left skew of temperature... i.e. right-shifted z); double-bit and
    /// off-the-bus are right-skewed in temperature terms.
    pub skewness: f64,
    /// Fraction of events with z > 1 ("hot" outliers).
    pub frac_above_1: f64,
    /// Fraction of events with z < -1 ("cold" outliers).
    pub frac_below_neg1: f64,
}

impl ExtremitySummary {
    /// Summarizes a set of z-scores (NaNs dropped). `None` if empty.
    pub fn compute(zs: &[f64]) -> Option<Self> {
        let v: Vec<f64> = zs.iter().copied().filter(|z| z.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let median = crate::stats::median(&v);
        let skew = crate::stats::skewness(&v);
        let above = v.iter().filter(|&&z| z > 1.0).count() as f64 / v.len() as f64;
        let below = v.iter().filter(|&&z| z < -1.0).count() as f64 / v.len() as f64;
        Some(Self {
            count: v.len(),
            mean_z: mean,
            median_z: median,
            skewness: skew,
            frac_above_1: above,
            frac_below_neg1: below,
        })
    }

    /// The paper's qualitative classification of a distribution.
    pub fn skew_label(&self) -> &'static str {
        if !self.skewness.is_finite() {
            "indeterminate"
        } else if self.skewness > 0.25 {
            "right-skewed"
        } else if self.skewness < -0.25 {
            "left-skewed"
        } else {
            "symmetric"
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn zscore_basic() {
        assert_eq!(zscore(12.0, 10.0, 2.0), 1.0);
        assert_eq!(zscore(6.0, 10.0, 2.0), -2.0);
        assert!(zscore(1.0, 1.0, 0.0).is_nan());
        assert!(zscore(f64::NAN, 0.0, 1.0).is_nan());
    }

    #[test]
    fn zscore_in_population() {
        let pop = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // mean 5, sample std = sqrt(32/7)
        let z = zscore_in(9.0, &pop);
        let expect = 4.0 / (32.0f64 / 7.0).sqrt();
        assert!((z - expect).abs() < 1e-12);
    }

    #[test]
    fn zscore_in_degenerate() {
        assert!(zscore_in(1.0, &[5.0]).is_nan());
        assert!(zscore_in(1.0, &[5.0, 5.0, 5.0]).is_nan());
        assert!(zscore_in(1.0, &[]).is_nan());
    }

    #[test]
    fn zscore_in_ignores_nan_population() {
        let pop = [1.0, f64::NAN, 3.0];
        let z = zscore_in(3.0, &pop);
        // mean 2, std sqrt(2)
        assert!((z - 1.0 / 2.0f64.sqrt() * 1.0).abs() < 1e-9);
    }

    #[test]
    fn extremity_summary_symmetric() {
        let zs: Vec<f64> = (-50..=50).map(|i| i as f64 / 10.0).collect();
        let s = ExtremitySummary::compute(&zs).unwrap();
        assert!((s.mean_z).abs() < 1e-9);
        assert_eq!(s.skew_label(), "symmetric");
        assert!((s.frac_above_1 - s.frac_below_neg1).abs() < 1e-9);
    }

    #[test]
    fn extremity_summary_right_skewed() {
        // Mostly cool with a hot tail.
        let mut zs = vec![-0.5; 80];
        zs.extend((0..20).map(|i| 1.0 + i as f64 * 0.3));
        let s = ExtremitySummary::compute(&zs).unwrap();
        assert_eq!(s.skew_label(), "right-skewed");
        assert!(s.frac_above_1 > 0.1);
    }

    #[test]
    fn extremity_summary_empty() {
        assert!(ExtremitySummary::compute(&[]).is_none());
        assert!(ExtremitySummary::compute(&[f64::NAN]).is_none());
    }
}
