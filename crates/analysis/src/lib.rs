//! # summit-analysis
//!
//! Statistical and signal-processing toolkit for HPC power/energy/thermal
//! telemetry analysis, reproducing the analysis methods of *"Revealing
//! Power, Energy and Thermal Dynamics of a 200PF Pre-Exascale
//! Supercomputer"* (Shin et al., SC '21).
//!
//! Every method the paper applies to Summit's 2020 telemetry corpus is
//! implemented here from scratch:
//!
//! - [`stats`] — the 10-second `count/min/max/mean/std` window statistic
//!   (Welford), quantiles, boxplots with the 1.5 IQR rule.
//! - [`cdf`] — empirical CDFs with percentile queries (Figure 7/10).
//! - [`kde`] — 1-D/2-D Gaussian kernel density estimation (Figures 6, 9).
//! - [`fft`] — radix-2 FFT, amplitude spectra, dominant swing component
//!   (Figure 10).
//! - [`edges`] — the 868 W/node rising/falling edge detector and the
//!   80 %-return duration definition (Figures 10, 11).
//! - [`snapshot`] — aligned snapshot superposition with 95 % Student-t
//!   envelopes (Figures 11, 12).
//! - [`correlation`] — Pearson correlation with Bonferroni-corrected
//!   significance (Figure 13).
//! - [`zscore`] — thermal-extremity z-scores (Figure 15).
//! - [`pue`] — power usage effectiveness and energy integration.
//! - [`rolling`] — rolling-window statistics and autocorrelation.
//! - [`histogram`], [`series`], [`special`] — supporting machinery.
//!
//! The crate is dependency-light (serde for dataset serialization, rayon
//! for grid/pair parallelism) and deterministic: no global state, no
//! clocks, no randomness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cdf;
pub mod correlation;
pub mod edges;
pub mod fft;
pub mod histogram;
pub mod kde;
pub mod pue;
pub mod rolling;
pub mod series;
pub mod snapshot;
pub mod special;
pub mod stats;
pub mod zscore;

/// Convenient re-exports of the most-used types.
pub mod prelude {
    pub use crate::cdf::Ecdf;
    pub use crate::correlation::{pearson, CorrelationMatrix};
    pub use crate::edges::{
        detect_edges, detect_edges_for_job, Edge, EdgeKind, OnlineEdgeDetector,
    };
    pub use crate::fft::{amplitude_spectrum, dominant_component, DominantComponent};
    pub use crate::histogram::{Histogram, Histogram2d};
    pub use crate::kde::{Bandwidth, Kde1d, Kde2d};
    pub use crate::pue::{average_pue, integrate_energy, pue, pue_series};
    pub use crate::rolling::{
        autocorrelation, rolling_max, rolling_mean, rolling_min, RollingSketch, RollingStats,
    };
    pub use crate::series::{sum_aligned, Series};
    pub use crate::snapshot::{superimpose, superimpose_paper_window, Superposition};
    pub use crate::stats::{BoxStats, Summary, Welford, WindowStats};
    pub use crate::zscore::{zscore, zscore_in, ExtremitySummary};
}
