//! Fixed-bin and automatically-binned histograms, one- and two-dimensional.
//!
//! Histograms back the telemetry system's "histogram-based component-wise
//! temperature distribution summary" (Section 2) and several figure
//! reproductions (Figure 16 slot counts, Figure 10 amplitude distribution).

use serde::{Deserialize, Serialize};

/// A one-dimensional histogram over uniform bins on `[lo, hi)`.
///
/// Values outside the range are counted in saturating edge bins
/// (`underflow` / `overflow`) rather than silently dropped, because the
/// telemetry layer must account for every sensor reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// If `bins == 0`, or the range is empty or non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "invalid histogram range [{lo}, {hi})"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Builds a histogram from data with automatic range (min..max padded
    /// by half a bin so the max lands inside). NaNs are dropped.
    /// Returns `None` if no finite data.
    pub fn auto(data: &[f64], bins: usize) -> Option<Self> {
        let finite: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if lo == hi {
            (lo - 0.5, hi + 0.5)
        } else {
            let pad = (hi - lo) * 1e-9;
            (lo, hi + pad + (hi - lo) / bins as f64 * 1e-6)
        };
        let mut h = Self::new(lo, hi, bins);
        for &x in &finite {
            h.push(x);
        }
        Some(h)
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.width()) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count below range / above range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations pushed (including out-of-range, excluding NaN).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width()
    }

    /// Left edge of bin `i` (edge `bins()` is the upper bound).
    pub fn edge(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.width()
    }

    /// Normalized density per bin (integrates to ≈ in-range fraction).
    pub fn density(&self) -> Vec<f64> {
        let norm = self.total.max(1) as f64 * self.width();
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }

    /// Index of the fullest bin; `None` if the histogram is empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.counts.iter().all(|&c| c == 0) {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
    }

    /// Merges a histogram with identical binning (parallel reduction).
    ///
    /// # Panics
    /// If binning differs.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.hi, other.hi, "histogram hi mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

/// A two-dimensional histogram over uniform bins — the cheap counterpart of
/// the 2-D KDE used for quick density scans of the Figure 6/9 joint
/// distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram2d {
    x_lo: f64,
    x_hi: f64,
    y_lo: f64,
    y_hi: f64,
    x_bins: usize,
    y_bins: usize,
    /// Row-major `[y][x]` counts flattened.
    counts: Vec<u64>,
    total: u64,
    out_of_range: u64,
}

impl Histogram2d {
    /// Creates a 2-D histogram with the given ranges and bin counts.
    pub fn new(x_range: (f64, f64), y_range: (f64, f64), x_bins: usize, y_bins: usize) -> Self {
        assert!(x_bins > 0 && y_bins > 0);
        assert!(x_range.1 > x_range.0 && y_range.1 > y_range.0);
        Self {
            x_lo: x_range.0,
            x_hi: x_range.1,
            y_lo: y_range.0,
            y_hi: y_range.1,
            x_bins,
            y_bins,
            counts: vec![0; x_bins * y_bins],
            total: 0,
            out_of_range: 0,
        }
    }

    /// Adds one observation; out-of-range points are tallied separately.
    pub fn push(&mut self, x: f64, y: f64) {
        if x.is_nan() || y.is_nan() {
            return;
        }
        self.total += 1;
        if x < self.x_lo || x >= self.x_hi || y < self.y_lo || y >= self.y_hi {
            self.out_of_range += 1;
            return;
        }
        let xi = (((x - self.x_lo) / (self.x_hi - self.x_lo)) * self.x_bins as f64) as usize;
        let yi = (((y - self.y_lo) / (self.y_hi - self.y_lo)) * self.y_bins as f64) as usize;
        let xi = xi.min(self.x_bins - 1);
        let yi = yi.min(self.y_bins - 1);
        self.counts[yi * self.x_bins + xi] += 1;
    }

    /// Count in cell `(xi, yi)`.
    pub fn cell(&self, xi: usize, yi: usize) -> u64 {
        assert!(xi < self.x_bins && yi < self.y_bins);
        self.counts[yi * self.x_bins + xi]
    }

    /// Total in-range + out-of-range observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations outside the grid.
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Grid dimensions `(x_bins, y_bins)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.x_bins, self.y_bins)
    }

    /// The `(xi, yi)` of the fullest cell; `None` if empty.
    pub fn mode_cell(&self) -> Option<(usize, usize)> {
        let (idx, &c) = self.counts.iter().enumerate().max_by_key(|&(_, &c)| c)?;
        if c == 0 {
            return None;
        }
        Some((idx % self.x_bins, idx / self.x_bins))
    }

    /// Center coordinates of cell `(xi, yi)`.
    pub fn cell_center(&self, xi: usize, yi: usize) -> (f64, f64) {
        let xw = (self.x_hi - self.x_lo) / self.x_bins as f64;
        let yw = (self.y_hi - self.y_lo) / self.y_bins as f64;
        (
            self.x_lo + (xi as f64 + 0.5) * xw,
            self.y_lo + (yi as f64 + 0.5) * yw,
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert!(h.counts().iter().all(|&c| c == 1));
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.0); // first bin
        h.push(10.0); // at the upper edge -> overflow
        h.push(-0.001); // underflow
        h.push(9.999999); // last bin
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_auto_covers_all_data() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.71).sin() * 5.0).collect();
        let h = Histogram::auto(&data, 16).unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
    }

    #[test]
    fn histogram_auto_constant_data() {
        let h = Histogram::auto(&[5.0; 10], 4).unwrap();
        assert_eq!(h.total(), 10);
        assert_eq!(h.counts().iter().sum::<u64>(), 10);
    }

    #[test]
    fn histogram_auto_empty_is_none() {
        assert!(Histogram::auto(&[], 4).is_none());
        assert!(Histogram::auto(&[f64::NAN], 4).is_none());
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::auto(&data, 20).unwrap();
        let integral: f64 = h.density().iter().sum::<f64>() * h.width();
        assert!((integral - 1.0).abs() < 1e-9, "integral = {integral}");
    }

    #[test]
    fn histogram_mode() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.push(1.5);
        h.push(1.5);
        h.push(0.5);
        assert_eq!(h.mode_bin(), Some(1));
        assert!((h.center(1) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.push(1.0);
        b.push(1.0);
        b.push(11.0);
        a.merge(&b);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn histogram2d_basic() {
        let mut h = Histogram2d::new((0.0, 4.0), (0.0, 4.0), 4, 4);
        h.push(0.5, 0.5);
        h.push(3.5, 3.5);
        h.push(3.5, 3.5);
        h.push(5.0, 1.0); // out of range
        assert_eq!(h.cell(0, 0), 1);
        assert_eq!(h.cell(3, 3), 2);
        assert_eq!(h.out_of_range(), 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.mode_cell(), Some((3, 3)));
        let (cx, cy) = h.cell_center(3, 3);
        assert!((cx - 3.5).abs() < 1e-12 && (cy - 3.5).abs() < 1e-12);
    }

    #[test]
    fn histogram2d_empty_mode_is_none() {
        let h = Histogram2d::new((0.0, 1.0), (0.0, 1.0), 2, 2);
        assert_eq!(h.mode_cell(), None);
    }
}
