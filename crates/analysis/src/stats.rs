//! Descriptive statistics: streaming (Welford) accumulators, quantiles,
//! five-number/boxplot summaries with the 1.5 IQR outlier rule used
//! throughout the paper (Section 6.2, Figure 17), and weighted percentile
//! helpers for the Figure 7 CDF red-lines.

use serde::{Deserialize, Serialize};

/// Streaming accumulator for count/min/max/mean/std using Welford's
/// algorithm — the exact statistic set the paper stores per 10-second
/// window ("min., max., mean, and standard deviation", Section 3).
///
/// ```
/// use summit_analysis::stats::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0] { w.push(x); }
/// assert_eq!(w.mean(), 2.0);
/// assert_eq!(w.finish().count, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample. Non-finite samples are ignored (the telemetry layer
    /// models dropped/NaN sensor reads and aggregation must stay robust,
    /// mirroring the paper's missing-data handling).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (`/n`); NaN when empty.
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`/(n-1)`); NaN for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation; NaN for fewer than two samples.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum; NaN when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum; NaN when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Freezes into the compact window statistic record.
    pub fn finish(&self) -> WindowStats {
        WindowStats {
            count: self.count,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            std: if self.count < 2 { 0.0 } else { self.std() },
        }
    }
}

/// The `count/min/max/mean/std` record stored per coarsened window —
/// the paper's Dataset 0 column quintuple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Samples in the window.
    pub count: u64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Mean sample.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std: f64,
}

impl WindowStats {
    /// An empty (all-missing) window.
    pub fn empty() -> Self {
        Self {
            count: 0,
            min: f64::NAN,
            max: f64::NAN,
            mean: f64::NAN,
            std: f64::NAN,
        }
    }

    /// True if the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Computes a linear-interpolated quantile (`q` in [0, 1]) of unsorted data.
///
/// Matches numpy's default ("linear") method. NaNs are filtered first.
/// Returns NaN for empty input.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile q must be in [0,1], got {q}"
    );
    let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&v, q)
}

/// Quantile of already-sorted, finite data (linear interpolation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of unsorted data.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Boxplot summary with the 1.5 IQR whisker/outlier rule, the rule the
/// paper uses to define "non-outlier" spreads (Section 6.2: 62 W power
/// spread, 15.8 °C temperature spread over 27,648 GPUs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Number of finite samples.
    pub count: usize,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lowest datum above `q1 - 1.5*IQR`.
    pub whisker_lo: f64,
    /// Highest datum below `q3 + 1.5*IQR`.
    pub whisker_hi: f64,
    /// Count of low outliers (below the lower fence).
    pub outliers_lo: usize,
    /// Count of high outliers (above the upper fence).
    pub outliers_hi: usize,
    /// Smallest sample (including outliers).
    pub min: f64,
    /// Largest sample (including outliers).
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl BoxStats {
    /// Computes the boxplot summary of `data` (NaNs dropped).
    /// Returns `None` for empty (post-filter) input.
    pub fn compute(data: &[f64]) -> Option<Self> {
        let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let q1 = quantile_sorted(&v, 0.25);
        let med = quantile_sorted(&v, 0.5);
        let q3 = quantile_sorted(&v, 0.75);
        let iqr = q3 - q1;
        let fence_lo = q1 - 1.5 * iqr;
        let fence_hi = q3 + 1.5 * iqr;
        let whisker_lo = v.iter().copied().find(|&x| x >= fence_lo).unwrap_or(v[0]);
        let whisker_hi = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= fence_hi)
            .unwrap_or(v[v.len() - 1]);
        let outliers_lo = v.iter().take_while(|&&x| x < fence_lo).count();
        let outliers_hi = v.iter().rev().take_while(|&&x| x > fence_hi).count();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        Some(Self {
            count: v.len(),
            q1,
            median: med,
            q3,
            whisker_lo,
            whisker_hi,
            outliers_lo,
            outliers_hi,
            min: v[0],
            max: v[v.len() - 1],
            mean,
        })
    }

    /// The non-outlier spread (whisker-to-whisker range) — the paper's
    /// "spread of non-outlier" metric for Figure 17.
    pub fn non_outlier_spread(&self) -> f64 {
        self.whisker_hi - self.whisker_lo
    }
}

/// Full descriptive summary of a slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of finite samples.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 5th percentile.
    pub p05: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary (NaNs dropped); `None` if no finite values.
    pub fn compute(data: &[f64]) -> Option<Self> {
        let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let mut w = Welford::new();
        for &x in &v {
            w.push(x);
        }
        Some(Self {
            count: v.len(),
            mean: w.mean(),
            std: if v.len() > 1 { w.std() } else { 0.0 },
            min: v[0],
            p05: quantile_sorted(&v, 0.05),
            p25: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            p75: quantile_sorted(&v, 0.75),
            p95: quantile_sorted(&v, 0.95),
            max: v[v.len() - 1],
        })
    }
}

/// Fisher-Pearson sample skewness (g1). NaN for fewer than 3 samples or
/// zero variance. Used to classify the left/right skew of the failure
/// thermal-extremity distributions (Figure 15).
pub fn skewness(data: &[f64]) -> f64 {
    let v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    let n = v.len();
    if n < 3 {
        return f64::NAN;
    }
    let mean = v.iter().sum::<f64>() / n as f64;
    let m2 = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let m3 = v.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64;
    if m2 <= 0.0 {
        return f64::NAN;
    }
    m3 / m2.powf(1.5)
}

/// Mean of a slice ignoring NaNs; NaN if empty.
pub fn nanmean(data: &[f64]) -> f64 {
    let mut w = Welford::new();
    for &x in data {
        w.push(x);
    }
    w.mean()
}

/// Sum of a slice ignoring NaNs.
pub fn nansum(data: &[f64]) -> f64 {
    data.iter().copied().filter(|x| x.is_finite()).sum()
}

/// Maximum ignoring NaNs; NaN if empty.
pub fn nanmax(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .filter(|x| x.is_finite())
        .fold(
            f64::NAN,
            |acc, x| if acc.is_nan() || x > acc { x } else { acc },
        )
}

/// Minimum ignoring NaNs; NaN if empty.
pub fn nanmin(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .filter(|x| x.is_finite())
        .fold(
            f64::NAN,
            |acc, x| if acc.is_nan() || x < acc { x } else { acc },
        )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance_population() - 4.0).abs() < 1e-12);
        assert!((w.std() - (32.0 / 7.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let b = Welford::new();
        let snapshot = a;
        a.merge(&b);
        assert_eq!(a, snapshot);

        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.mean(), 2.0);
    }

    #[test]
    fn welford_ignores_nan() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(f64::NAN);
        w.push(3.0);
        w.push(f64::INFINITY);
        assert_eq!(w.count(), 2);
        assert_eq!(w.mean(), 2.0);
    }

    #[test]
    fn empty_welford_is_nan() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.min().is_nan());
        assert!(w.max().is_nan());
        assert!(w.std().is_nan());
    }

    #[test]
    fn quantile_linear_interpolation() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert!((quantile(&data, 0.5) - 2.5).abs() < 1e-12);
        // numpy.percentile([1,2,3,4], 25) = 1.75
        assert!((quantile(&data, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[42.0], 0.3), 42.0);
    }

    #[test]
    fn quantile_empty_is_nan() {
        assert!(quantile(&[], 0.5).is_nan());
        assert!(quantile(&[f64::NAN], 0.5).is_nan());
    }

    #[test]
    fn boxstats_basic() {
        let data: Vec<f64> = (1..=11).map(|x| x as f64).collect();
        let b = BoxStats::compute(&data).unwrap();
        assert_eq!(b.median, 6.0);
        assert_eq!(b.q1, 3.5);
        assert_eq!(b.q3, 8.5);
        assert_eq!(b.outliers_lo + b.outliers_hi, 0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 11.0);
    }

    #[test]
    fn boxstats_flags_outliers() {
        let mut data: Vec<f64> = (1..=11).map(|x| x as f64).collect();
        data.push(1000.0);
        data.push(-1000.0);
        let b = BoxStats::compute(&data).unwrap();
        assert_eq!(b.outliers_hi, 1);
        assert_eq!(b.outliers_lo, 1);
        assert!(b.whisker_hi <= 11.0);
        assert!(b.whisker_lo >= 1.0);
        assert!(b.non_outlier_spread() <= 10.0 + 1e-9);
    }

    #[test]
    fn boxstats_empty_is_none() {
        assert!(BoxStats::compute(&[]).is_none());
        assert!(BoxStats::compute(&[f64::NAN]).is_none());
    }

    #[test]
    fn summary_percentiles_ordered() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let s = Summary::compute(&data).unwrap();
        assert!(s.min <= s.p05);
        assert!(s.p05 <= s.p25);
        assert!(s.p25 <= s.median);
        assert!(s.median <= s.p75);
        assert!(s.p75 <= s.p95);
        assert!(s.p95 <= s.max);
        assert_eq!(s.count, 1000);
    }

    #[test]
    fn skewness_signs() {
        // Right-skewed: long tail to the right.
        let right: Vec<f64> = vec![1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 10.0];
        assert!(skewness(&right) > 0.5);
        // Left-skewed.
        let left: Vec<f64> = right.iter().map(|x| -x).collect();
        assert!(skewness(&left) < -0.5);
        // Symmetric.
        let sym = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&sym).abs() < 1e-12);
    }

    #[test]
    fn skewness_degenerate() {
        assert!(skewness(&[1.0, 2.0]).is_nan());
        assert!(skewness(&[3.0, 3.0, 3.0]).is_nan());
    }

    #[test]
    fn nan_aggregations() {
        let data = [1.0, f64::NAN, 3.0];
        assert_eq!(nanmean(&data), 2.0);
        assert_eq!(nansum(&data), 4.0);
        assert_eq!(nanmax(&data), 3.0);
        assert_eq!(nanmin(&data), 1.0);
        assert!(nanmax(&[]).is_nan());
        assert!(nanmin(&[f64::NAN]).is_nan());
    }

    #[test]
    fn window_stats_empty() {
        let w = WindowStats::empty();
        assert!(w.is_empty());
        assert!(w.mean.is_nan());
    }
}
