//! Descriptive statistics: streaming (Welford) accumulators, quantiles,
//! five-number/boxplot summaries with the 1.5 IQR outlier rule used
//! throughout the paper (Section 6.2, Figure 17), and weighted percentile
//! helpers for the Figure 7 CDF red-lines.

use serde::{Deserialize, Serialize};

/// Streaming accumulator for count/min/max/mean/std using Welford's
/// algorithm — the exact statistic set the paper stores per 10-second
/// window ("min., max., mean, and standard deviation", Section 3).
///
/// ```
/// use summit_analysis::stats::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0] { w.push(x); }
/// assert_eq!(w.mean(), 2.0);
/// assert_eq!(w.finish().count, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample. Non-finite samples are ignored (the telemetry layer
    /// models dropped/NaN sensor reads and aggregation must stay robust,
    /// mirroring the paper's missing-data handling).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Folds a whole column of samples into the accumulator in one tight
    /// loop — the batched form of calling [`Welford::push`] on every
    /// element in order, bit-identical to that sequence for every input
    /// (including NaN/±0.0/infinity patterns).
    ///
    /// The loop keeps the running state in locals and handles non-finite
    /// samples branch-free: the update is always computed, and a
    /// conditional select keeps the old state when the sample is not
    /// finite. Selects compile to conditional moves, so a column with
    /// scattered NaNs (missing sensors) costs the same as a clean one.
    ///
    /// ```
    /// use summit_analysis::stats::Welford;
    /// let xs = [2.0, f64::NAN, 4.0, 9.0];
    /// let mut a = Welford::new();
    /// a.merge_column(&xs);
    /// let mut b = Welford::new();
    /// for &x in &xs { b.push(x); }
    /// assert_eq!(a, b);
    /// ```
    pub fn merge_column(&mut self, xs: &[f64]) {
        let mut count = self.count;
        let mut mean = self.mean;
        let mut m2 = self.m2;
        let mut min = self.min;
        let mut max = self.max;
        for &x in xs {
            let finite = x.is_finite();
            let n = count + u64::from(finite);
            let delta = x - mean;
            let mean_new = mean + delta / n.max(1) as f64;
            let m2_new = m2 + delta * (x - mean_new);
            count = n;
            mean = if finite { mean_new } else { mean };
            m2 = if finite { m2_new } else { m2 };
            min = if finite && x < min { x } else { min };
            max = if finite && x > max { x } else { max };
        }
        self.count = count;
        self.mean = mean;
        self.m2 = m2;
        self.min = min;
        self.max = max;
    }

    /// Number of (finite) samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (`/n`); NaN when empty.
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`/(n-1)`); NaN for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation; NaN for fewer than two samples.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum; NaN when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum; NaN when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Freezes into the compact window statistic record.
    pub fn finish(&self) -> WindowStats {
        WindowStats {
            count: self.count,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            std: if self.count < 2 { 0.0 } else { self.std() },
        }
    }
}

/// A structure-of-arrays bank of [`Welford`] accumulators — one lane
/// per column of a fixed-width record stream (e.g. the 106 metrics of
/// a telemetry frame).
///
/// [`WelfordColumns::push_row`] updates every lane in one pass over
/// the row. Lanes are independent, so unlike a single Welford fold
/// (whose running mean is a loop-carried chain) the lane axis has no
/// serial dependency: the counts, means, m2s and min/max live in
/// parallel `f64` arrays and the update is branch-free (non-finite
/// samples are masked out with selects), which lets the compiler
/// vectorize the whole quintuple update across lanes.
///
/// Counts are tracked as `f64` so the entire update stays in one SIMD
/// domain; they are exact integers far below 2^53, and every lane is
/// bit-identical to calling [`Welford::push`] with the same samples:
///
/// ```
/// use summit_analysis::stats::{Welford, WelfordColumns};
/// let rows: [[f32; 2]; 3] = [[1.0, 10.0], [2.0, f32::NAN], [3.0, 30.0]];
/// let mut bank = WelfordColumns::new(2);
/// for row in &rows {
///     bank.push_row(row);
/// }
/// let mut by_hand = Welford::new();
/// for row in &rows {
///     by_hand.push(f64::from(row[0]));
/// }
/// assert_eq!(bank.lane(0), by_hand);
/// assert_eq!(bank.lane(1).count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WelfordColumns {
    count: Vec<f64>,
    mean: Vec<f64>,
    m2: Vec<f64>,
    min: Vec<f64>,
    max: Vec<f64>,
}

/// Lane-block width of [`WelfordColumns::push_row`]: the all-NaN skip
/// and the vectorized update both operate on blocks of this many
/// lanes (two 4-wide f64 vectors at AVX2).
const LANE_BLOCK: usize = 8;

impl WelfordColumns {
    /// Creates a bank of `width` empty accumulators.
    pub fn new(width: usize) -> Self {
        Self {
            count: vec![0.0; width],
            mean: vec![0.0; width],
            m2: vec![0.0; width],
            min: vec![f64::INFINITY; width],
            max: vec![f64::NEG_INFINITY; width],
        }
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.count.len()
    }

    /// Folds one row into the bank: lane `m` receives `row[m]`. The
    /// row must match the bank's width.
    ///
    /// Lanes are processed in blocks of [`LANE_BLOCK`]: a block whose
    /// samples are all non-finite is skipped outright (a non-finite
    /// sample leaves every field of its lane unchanged, so skipping is
    /// exact), which makes sparsely-populated rows — telemetry frames
    /// where most catalog metrics have no sensor — as cheap as they
    /// are in the branchy row path, while populated blocks take the
    /// vectorized select path.
    pub fn push_row(&mut self, row: &[f32]) {
        let w = self.count.len();
        debug_assert_eq!(row.len(), w, "row width must match the bank");
        // Pin the row to the bank width up front: a short row still
        // fails loudly here, and the equal-length slices let the block
        // loop below run without per-slice bounds checks.
        let row = &row[..w];
        let mut blocks = row.chunks_exact(LANE_BLOCK);
        let mut at = 0;
        for chunk in &mut blocks {
            let to = at + LANE_BLOCK;
            match <&[f32; LANE_BLOCK]>::try_from(chunk) {
                Ok(block) => {
                    let mut any = false;
                    let mut all = true;
                    for v in block {
                        let finite = v.is_finite();
                        any |= finite;
                        all &= finite;
                    }
                    if all {
                        // Fully-populated block: the branch-free
                        // update over a constant-length block, which
                        // vectorizes across the lanes.
                        update_lanes(
                            &mut self.count[at..to],
                            &mut self.mean[at..to],
                            &mut self.m2[at..to],
                            &mut self.min[at..to],
                            &mut self.max[at..to],
                            block,
                        );
                    } else if any {
                        // Mixed block: per-lane skips beat paying the
                        // full quintuple (division included) on lanes
                        // a missing sensor leaves unchanged anyway.
                        update_lanes_sparse(
                            &mut self.count[at..to],
                            &mut self.mean[at..to],
                            &mut self.m2[at..to],
                            &mut self.min[at..to],
                            &mut self.max[at..to],
                            block,
                        );
                    }
                }
                // chunks_exact only yields LANE_BLOCK-sized chunks;
                // fall back to the width-generic path rather than
                // panic if that ever stops holding.
                Err(_) => update_lanes_sparse(
                    &mut self.count[at..to],
                    &mut self.mean[at..to],
                    &mut self.m2[at..to],
                    &mut self.min[at..to],
                    &mut self.max[at..to],
                    chunk,
                ),
            }
            at = to;
        }
        let tail = blocks.remainder();
        update_lanes_sparse(
            &mut self.count[at..w],
            &mut self.mean[at..w],
            &mut self.m2[at..w],
            &mut self.min[at..w],
            &mut self.max[at..w],
            tail,
        );
    }

    /// Reads lane `m` out as an ordinary [`Welford`] accumulator.
    pub fn lane(&self, m: usize) -> Welford {
        Welford {
            // Counts are integral and far below 2^53, so the cast is
            // exact.
            count: self.count[m] as u64,
            mean: self.mean[m],
            m2: self.m2[m],
            min: self.min[m],
            max: self.max[m],
        }
    }

    /// Empties every lane, keeping the allocations.
    pub fn reset(&mut self) {
        self.count.fill(0.0);
        self.mean.fill(0.0);
        self.m2.fill(0.0);
        self.min.fill(f64::INFINITY);
        self.max.fill(f64::NEG_INFINITY);
    }

    /// Freezes every lane into its compact window record, appending
    /// `width()` entries to `out` in lane order — one pass over the
    /// bank, bit-identical to [`WelfordColumns::lane`] followed by
    /// [`Welford::finish`] on each lane.
    pub fn finish_into(&self, out: &mut Vec<WindowStats>) {
        out.reserve(self.count.len());
        for m in 0..self.count.len() {
            // Counts are exact integers far below 2^53, so both the
            // u64 cast and the `count - 1.0` divisor match the u64
            // arithmetic in `Welford::finish` to the bit.
            let count = self.count[m];
            let empty = count == 0.0;
            out.push(WindowStats {
                count: count as u64,
                min: if empty { f64::NAN } else { self.min[m] },
                max: if empty { f64::NAN } else { self.max[m] },
                mean: if empty { f64::NAN } else { self.mean[m] },
                std: if count < 2.0 {
                    0.0
                } else {
                    (self.m2[m] / (count - 1.0)).sqrt()
                },
            });
        }
    }

    /// [`WelfordColumns::finish_into`] fused with
    /// [`WelfordColumns::reset`]: each lane is frozen and emptied in
    /// the same traversal, touching the five column arrays once
    /// instead of twice. Identical output and post-state to calling
    /// the two separately.
    pub fn finish_reset_into(&mut self, out: &mut Vec<WindowStats>) {
        out.reserve(self.count.len());
        for m in 0..self.count.len() {
            let count = self.count[m];
            let empty = count == 0.0;
            out.push(WindowStats {
                count: count as u64,
                min: if empty { f64::NAN } else { self.min[m] },
                max: if empty { f64::NAN } else { self.max[m] },
                mean: if empty { f64::NAN } else { self.mean[m] },
                std: if count < 2.0 {
                    0.0
                } else {
                    (self.m2[m] / (count - 1.0)).sqrt()
                },
            });
            self.count[m] = 0.0;
            self.mean[m] = 0.0;
            self.m2[m] = 0.0;
            self.min[m] = f64::INFINITY;
            self.max[m] = f64::NEG_INFINITY;
        }
    }
}

/// The branch-free quintuple update for one fully-populated row block
/// applied to the matching lane slices. Callers must have verified
/// every sample in `row` is finite: with that precondition the
/// non-finite masking of [`Welford::push`] reduces to no-ops, so this
/// unmasked body is bit-identical to it while doing strictly less
/// work. All six slices must share a length; the caller slices them
/// at the call site so that, for the [`LANE_BLOCK`]-sized array
/// block, the trip count is a compile-time constant and the whole
/// body vectorizes across lanes.
#[inline(always)]
fn update_lanes(
    count: &mut [f64],
    mean: &mut [f64],
    m2: &mut [f64],
    min: &mut [f64],
    max: &mut [f64],
    row: &[f32],
) {
    for m in 0..row.len() {
        let x = f64::from(row[m]);
        let n = count[m] + 1.0;
        let delta = x - mean[m];
        let mean_new = mean[m] + delta / n;
        m2[m] += delta * (x - mean_new);
        count[m] = n;
        mean[m] = mean_new;
        min[m] = if x < min[m] { x } else { min[m] };
        max[m] = if x > max[m] { x } else { max[m] };
    }
}

/// The per-lane branchy variant of [`update_lanes`] for blocks where
/// some lanes have no sample: a non-finite lane is skipped before any
/// arithmetic, so a mostly-missing block costs its finite lanes only.
/// Finite lanes execute the identical operation sequence to
/// [`update_lanes`] (`n >= 1`, so its `n.max(1.0)` guard is the same
/// division), keeping the two variants bit-identical.
#[inline(always)]
fn update_lanes_sparse(
    count: &mut [f64],
    mean: &mut [f64],
    m2: &mut [f64],
    min: &mut [f64],
    max: &mut [f64],
    row: &[f32],
) {
    for m in 0..row.len() {
        let x = f64::from(row[m]);
        if !x.is_finite() {
            continue;
        }
        let n = count[m] + 1.0;
        let delta = x - mean[m];
        let mean_new = mean[m] + delta / n;
        m2[m] += delta * (x - mean_new);
        count[m] = n;
        mean[m] = mean_new;
        if x < min[m] {
            min[m] = x;
        }
        if x > max[m] {
            max[m] = x;
        }
    }
}

/// The `count/min/max/mean/std` record stored per coarsened window —
/// the paper's Dataset 0 column quintuple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Samples in the window.
    pub count: u64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Mean sample.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std: f64,
}

impl WindowStats {
    /// An empty (all-missing) window.
    pub fn empty() -> Self {
        Self {
            count: 0,
            min: f64::NAN,
            max: f64::NAN,
            mean: f64::NAN,
            std: f64::NAN,
        }
    }

    /// True if the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Computes a linear-interpolated quantile (`q` in [0, 1]) of unsorted data.
///
/// Matches numpy's default ("linear") method. NaNs are filtered first.
/// Returns NaN for empty input.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile q must be in [0,1], got {q}"
    );
    let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&v, q)
}

/// Quantile of already-sorted, finite data (linear interpolation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of unsorted data.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Boxplot summary with the 1.5 IQR whisker/outlier rule, the rule the
/// paper uses to define "non-outlier" spreads (Section 6.2: 62 W power
/// spread, 15.8 °C temperature spread over 27,648 GPUs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Number of finite samples.
    pub count: usize,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lowest datum above `q1 - 1.5*IQR`.
    pub whisker_lo: f64,
    /// Highest datum below `q3 + 1.5*IQR`.
    pub whisker_hi: f64,
    /// Count of low outliers (below the lower fence).
    pub outliers_lo: usize,
    /// Count of high outliers (above the upper fence).
    pub outliers_hi: usize,
    /// Smallest sample (including outliers).
    pub min: f64,
    /// Largest sample (including outliers).
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl BoxStats {
    /// Computes the boxplot summary of `data` (NaNs dropped).
    /// Returns `None` for empty (post-filter) input.
    pub fn compute(data: &[f64]) -> Option<Self> {
        let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let q1 = quantile_sorted(&v, 0.25);
        let med = quantile_sorted(&v, 0.5);
        let q3 = quantile_sorted(&v, 0.75);
        let iqr = q3 - q1;
        let fence_lo = q1 - 1.5 * iqr;
        let fence_hi = q3 + 1.5 * iqr;
        let whisker_lo = v.iter().copied().find(|&x| x >= fence_lo).unwrap_or(v[0]);
        let whisker_hi = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= fence_hi)
            .unwrap_or(v[v.len() - 1]);
        let outliers_lo = v.iter().take_while(|&&x| x < fence_lo).count();
        let outliers_hi = v.iter().rev().take_while(|&&x| x > fence_hi).count();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        Some(Self {
            count: v.len(),
            q1,
            median: med,
            q3,
            whisker_lo,
            whisker_hi,
            outliers_lo,
            outliers_hi,
            min: v[0],
            max: v[v.len() - 1],
            mean,
        })
    }

    /// The non-outlier spread (whisker-to-whisker range) — the paper's
    /// "spread of non-outlier" metric for Figure 17.
    pub fn non_outlier_spread(&self) -> f64 {
        self.whisker_hi - self.whisker_lo
    }
}

/// Full descriptive summary of a slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of finite samples.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 5th percentile.
    pub p05: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary (NaNs dropped); `None` if no finite values.
    pub fn compute(data: &[f64]) -> Option<Self> {
        let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let mut w = Welford::new();
        for &x in &v {
            w.push(x);
        }
        Some(Self {
            count: v.len(),
            mean: w.mean(),
            std: if v.len() > 1 { w.std() } else { 0.0 },
            min: v[0],
            p05: quantile_sorted(&v, 0.05),
            p25: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            p75: quantile_sorted(&v, 0.75),
            p95: quantile_sorted(&v, 0.95),
            max: v[v.len() - 1],
        })
    }
}

/// Fisher-Pearson sample skewness (g1). NaN for fewer than 3 samples or
/// zero variance. Used to classify the left/right skew of the failure
/// thermal-extremity distributions (Figure 15).
pub fn skewness(data: &[f64]) -> f64 {
    let v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    let n = v.len();
    if n < 3 {
        return f64::NAN;
    }
    let mean = v.iter().sum::<f64>() / n as f64;
    let m2 = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let m3 = v.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64;
    if m2 <= 0.0 {
        return f64::NAN;
    }
    m3 / m2.powf(1.5)
}

/// Mean of a slice ignoring NaNs; NaN if empty.
pub fn nanmean(data: &[f64]) -> f64 {
    let mut w = Welford::new();
    for &x in data {
        w.push(x);
    }
    w.mean()
}

/// Sum of a slice ignoring NaNs.
pub fn nansum(data: &[f64]) -> f64 {
    data.iter().copied().filter(|x| x.is_finite()).sum()
}

/// Maximum ignoring NaNs; NaN if empty.
pub fn nanmax(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .filter(|x| x.is_finite())
        .fold(
            f64::NAN,
            |acc, x| if acc.is_nan() || x > acc { x } else { acc },
        )
}

/// Minimum ignoring NaNs; NaN if empty.
pub fn nanmin(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .filter(|x| x.is_finite())
        .fold(
            f64::NAN,
            |acc, x| if acc.is_nan() || x < acc { x } else { acc },
        )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    /// Deterministic pseudo-random stream for the column property tests
    /// (no external RNG dependency; splitmix64).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn assert_bitwise_eq(a: &Welford, b: &Welford, ctx: &str) {
        let (fa, fb) = (a.finish(), b.finish());
        assert_eq!(a.count(), b.count(), "count {ctx}");
        assert_eq!(fa.mean.to_bits(), fb.mean.to_bits(), "mean {ctx}");
        assert_eq!(fa.min.to_bits(), fb.min.to_bits(), "min {ctx}");
        assert_eq!(fa.max.to_bits(), fb.max.to_bits(), "max {ctx}");
        assert_eq!(fa.std.to_bits(), fb.std.to_bits(), "std {ctx}");
        // finish() hides m2 behind std; compare the raw accumulator too.
        assert_eq!(a.m2.to_bits(), b.m2.to_bits(), "m2 {ctx}");
        assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "raw mean {ctx}");
    }

    #[test]
    fn merge_column_is_bit_identical_to_push_sequence() {
        // Columns mixing magnitudes, signs, NaN, infinities and ±0.0:
        // the masked column loop must replay the branchy push exactly.
        let specials = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::MIN_POSITIVE / 2.0, // subnormal
            1e300,
            -1e300,
        ];
        let mut state = 0x5EED_2021u64;
        for round in 0..64 {
            let len = (splitmix64(&mut state) % 40) as usize;
            let col: Vec<f64> = (0..len)
                .map(|_| {
                    let r = splitmix64(&mut state);
                    if r.is_multiple_of(5) {
                        specials[(r / 5) as usize % specials.len()]
                    } else {
                        // Spread over ~12 orders of magnitude, both signs.
                        let mag = (r % 1_000_000) as f64 * 1e-3;
                        let exp = ((r >> 20) % 13) as i32 - 6;
                        let sign = if (r >> 40) & 1 == 0 { 1.0 } else { -1.0 };
                        sign * mag * 10f64.powi(exp)
                    }
                })
                .collect();
            let mut batched = Welford::new();
            batched.merge_column(&col);
            let mut reference = Welford::new();
            for &x in &col {
                reference.push(x);
            }
            assert_bitwise_eq(&batched, &reference, &format!("round {round}"));
        }
    }

    #[test]
    fn merge_column_resumes_from_nonempty_state() {
        // Folding a column into an accumulator that already holds
        // samples must equal continuing the push sequence.
        let head = [3.5, -2.0, f64::NAN, 7.25];
        let tail = [f64::NEG_INFINITY, 0.0, -0.0, 11.0, 1e-12];
        let mut batched = Welford::new();
        batched.merge_column(&head);
        batched.merge_column(&tail);
        let mut reference = Welford::new();
        for &x in head.iter().chain(&tail) {
            reference.push(x);
        }
        assert_bitwise_eq(&batched, &reference, "resume");
    }

    #[test]
    fn merge_column_all_non_finite_stays_empty() {
        let mut w = Welford::new();
        w.merge_column(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(w.count(), 0);
        assert!(w.mean().is_nan());
        assert!(w.finish().is_empty());
    }

    #[test]
    fn merge_column_empty_is_identity() {
        let mut w = Welford::new();
        w.push(5.0);
        let before = w;
        w.merge_column(&[]);
        assert_bitwise_eq(&w, &before, "empty column");
    }

    #[test]
    fn welford_matches_two_pass() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance_population() - 4.0).abs() < 1e-12);
        assert!((w.std() - (32.0 / 7.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let b = Welford::new();
        let snapshot = a;
        a.merge(&b);
        assert_eq!(a, snapshot);

        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.mean(), 2.0);
    }

    #[test]
    fn welford_ignores_nan() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(f64::NAN);
        w.push(3.0);
        w.push(f64::INFINITY);
        assert_eq!(w.count(), 2);
        assert_eq!(w.mean(), 2.0);
    }

    #[test]
    fn empty_welford_is_nan() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.min().is_nan());
        assert!(w.max().is_nan());
        assert!(w.std().is_nan());
    }

    #[test]
    fn quantile_linear_interpolation() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert!((quantile(&data, 0.5) - 2.5).abs() < 1e-12);
        // numpy.percentile([1,2,3,4], 25) = 1.75
        assert!((quantile(&data, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[42.0], 0.3), 42.0);
    }

    #[test]
    fn quantile_empty_is_nan() {
        assert!(quantile(&[], 0.5).is_nan());
        assert!(quantile(&[f64::NAN], 0.5).is_nan());
    }

    #[test]
    fn boxstats_basic() {
        let data: Vec<f64> = (1..=11).map(|x| x as f64).collect();
        let b = BoxStats::compute(&data).unwrap();
        assert_eq!(b.median, 6.0);
        assert_eq!(b.q1, 3.5);
        assert_eq!(b.q3, 8.5);
        assert_eq!(b.outliers_lo + b.outliers_hi, 0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 11.0);
    }

    #[test]
    fn boxstats_flags_outliers() {
        let mut data: Vec<f64> = (1..=11).map(|x| x as f64).collect();
        data.push(1000.0);
        data.push(-1000.0);
        let b = BoxStats::compute(&data).unwrap();
        assert_eq!(b.outliers_hi, 1);
        assert_eq!(b.outliers_lo, 1);
        assert!(b.whisker_hi <= 11.0);
        assert!(b.whisker_lo >= 1.0);
        assert!(b.non_outlier_spread() <= 10.0 + 1e-9);
    }

    #[test]
    fn boxstats_empty_is_none() {
        assert!(BoxStats::compute(&[]).is_none());
        assert!(BoxStats::compute(&[f64::NAN]).is_none());
    }

    #[test]
    fn summary_percentiles_ordered() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let s = Summary::compute(&data).unwrap();
        assert!(s.min <= s.p05);
        assert!(s.p05 <= s.p25);
        assert!(s.p25 <= s.median);
        assert!(s.median <= s.p75);
        assert!(s.p75 <= s.p95);
        assert!(s.p95 <= s.max);
        assert_eq!(s.count, 1000);
    }

    #[test]
    fn skewness_signs() {
        // Right-skewed: long tail to the right.
        let right: Vec<f64> = vec![1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 10.0];
        assert!(skewness(&right) > 0.5);
        // Left-skewed.
        let left: Vec<f64> = right.iter().map(|x| -x).collect();
        assert!(skewness(&left) < -0.5);
        // Symmetric.
        let sym = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&sym).abs() < 1e-12);
    }

    #[test]
    fn skewness_degenerate() {
        assert!(skewness(&[1.0, 2.0]).is_nan());
        assert!(skewness(&[3.0, 3.0, 3.0]).is_nan());
    }

    #[test]
    fn nan_aggregations() {
        let data = [1.0, f64::NAN, 3.0];
        assert_eq!(nanmean(&data), 2.0);
        assert_eq!(nansum(&data), 4.0);
        assert_eq!(nanmax(&data), 3.0);
        assert_eq!(nanmin(&data), 1.0);
        assert!(nanmax(&[]).is_nan());
        assert!(nanmin(&[f64::NAN]).is_nan());
    }

    #[test]
    fn window_stats_empty() {
        let w = WindowStats::empty();
        assert!(w.is_empty());
        assert!(w.mean.is_nan());
    }
}
