//! Fast Fourier transform and power-swing spectral characterization.
//!
//! Section 4.2 of the paper differences each job's power time-series (to
//! remove auto-correlation) and applies an FFT to find the dominant swing
//! frequency and amplitude (Figure 10, bottom row; the 0.005 Hz / 200 s
//! finding). This module provides an iterative radix-2 complex FFT with
//! real-input helpers, amplitude spectra, and the dominant-component
//! extraction used by the experiment drivers.

use serde::{Deserialize, Serialize};

/// A complex number (minimal, avoids an external dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// # Panics
/// If `data.len()` is not a power of two (use [`fft_padded`] for arbitrary
/// lengths).
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "fft length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly stages.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half].mul(w);
                chunk[k] = u.add(v);
                chunk[k + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of length `data.len().next_power_of_two()`.
pub fn fft_padded(data: &[f64]) -> Vec<Complex> {
    if data.is_empty() {
        return Vec::new();
    }
    let _obs = summit_obs::span("summit_analysis_fft");
    summit_obs::histogram("summit_analysis_fft_points").observe(data.len() as f64);
    let n = data.len().next_power_of_two();
    let mut buf: Vec<Complex> = Vec::with_capacity(n);
    buf.extend(data.iter().map(|&x| Complex::new(x, 0.0)));
    buf.resize(n, Complex::default());
    fft_in_place(&mut buf);
    buf
}

/// Inverse FFT (in place), for round-trip validation and filtering.
pub fn ifft_in_place(data: &mut [Complex]) {
    for z in data.iter_mut() {
        z.im = -z.im;
    }
    fft_in_place(data);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        z.re /= n;
        z.im = -z.im / n;
    }
}

/// One-sided amplitude spectrum of a real signal sampled at `sample_hz`.
///
/// Returns `(frequencies_hz, amplitudes)` for bins `1..n/2` (the DC bin is
/// excluded — after differencing, DC carries no swing information).
/// Amplitudes are scaled so a pure sinusoid of amplitude `A` reports ~`A`.
pub fn amplitude_spectrum(data: &[f64], sample_hz: f64) -> (Vec<f64>, Vec<f64>) {
    assert!(sample_hz > 0.0, "sample rate must be positive");
    if data.len() < 4 {
        return (Vec::new(), Vec::new());
    }
    let spec = fft_padded(data);
    let n = spec.len();
    let n_signal = data.len() as f64;
    let half = n / 2;
    let mut freqs = Vec::with_capacity(half - 1);
    let mut amps = Vec::with_capacity(half - 1);
    for (k, z) in spec.iter().enumerate().take(half).skip(1) {
        freqs.push(k as f64 * sample_hz / n as f64);
        amps.push(2.0 * z.abs() / n_signal);
    }
    (freqs, amps)
}

/// The dominant spectral component of a (already differenced) signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DominantComponent {
    /// Frequency in Hz of the maximum-amplitude bin.
    pub frequency_hz: f64,
    /// Amplitude at that bin (signal units).
    pub amplitude: f64,
    /// Period in seconds (1/frequency).
    pub period_s: f64,
}

/// Finds the maximum-amplitude frequency component — the paper's per-job
/// "most critical frequency and its amplitude" statistic (each job
/// contributes one frequency and one amplitude to Figure 10).
///
/// ```
/// use summit_analysis::fft::dominant_component;
/// // A 256 s period sampled at 1 Hz.
/// let signal: Vec<f64> = (0..4096)
///     .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 256.0).sin())
///     .collect();
/// let d = dominant_component(&signal, 1.0).unwrap();
/// assert!((d.period_s - 256.0).abs() < 1.0);
/// ```
pub fn dominant_component(data: &[f64], sample_hz: f64) -> Option<DominantComponent> {
    let (freqs, amps) = amplitude_spectrum(data, sample_hz);
    if freqs.is_empty() {
        return None;
    }
    let (idx, &amp) = amps.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
    let f = freqs[idx];
    Some(DominantComponent {
        frequency_hz: f,
        amplitude: amp,
        period_s: if f > 0.0 { 1.0 / f } else { f64::INFINITY },
    })
}

/// A short-time Fourier transform: amplitude spectra over sliding
/// windows, for watching a job's dominant swing mode evolve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spectrogram {
    /// Window-center times (s, relative to the signal start).
    pub times_s: Vec<f64>,
    /// Frequency axis (Hz), shared by all windows.
    pub freqs_hz: Vec<f64>,
    /// Row-major amplitudes: `amps[w * freqs.len() + k]`.
    pub amps: Vec<f64>,
}

impl Spectrogram {
    /// Amplitude at window `w`, frequency bin `k`.
    pub fn at(&self, w: usize, k: usize) -> f64 {
        self.amps[w * self.freqs_hz.len() + k]
    }

    /// Dominant frequency per window (Hz).
    pub fn dominant_per_window(&self) -> Vec<f64> {
        (0..self.times_s.len())
            .map(|w| {
                let row = &self.amps[w * self.freqs_hz.len()..(w + 1) * self.freqs_hz.len()];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(k, _)| self.freqs_hz[k])
                    .unwrap_or(f64::NAN)
            })
            .collect()
    }
}

/// Computes a spectrogram with `window` samples per slice and `hop`
/// samples between slice starts. Each slice is Hann-windowed before the
/// FFT to limit leakage between slices.
///
/// # Panics
/// If `window < 4` or `hop == 0`.
pub fn spectrogram(data: &[f64], sample_hz: f64, window: usize, hop: usize) -> Spectrogram {
    assert!(window >= 4, "window must hold at least 4 samples");
    assert!(hop > 0, "hop must be positive");
    assert!(sample_hz > 0.0);
    let _obs = summit_obs::span("summit_analysis_spectrogram");
    let n_fft = window.next_power_of_two();
    let half = n_fft / 2;
    let freqs_hz: Vec<f64> = (1..half)
        .map(|k| k as f64 * sample_hz / n_fft as f64)
        .collect();
    let mut times_s = Vec::new();
    let mut amps = Vec::new();
    let hann: Vec<f64> = (0..window)
        .map(|i| 0.5 * (1.0 - (2.0 * std::f64::consts::PI * i as f64 / (window - 1) as f64).cos()))
        .collect();
    let mut start = 0usize;
    while start + window <= data.len() {
        let slice: Vec<f64> = data[start..start + window]
            .iter()
            .zip(&hann)
            .map(|(x, w)| x * w)
            .collect();
        let spec = fft_padded(&slice);
        // Hann coherent gain is 0.5; rescale so a sinusoid reports ~A.
        for z in spec.iter().take(half).skip(1) {
            amps.push(2.0 * z.abs() / (window as f64 * 0.5));
        }
        times_s.push((start + window / 2) as f64 / sample_hz);
        start += hop;
    }
    Spectrogram {
        times_s,
        freqs_hz,
        amps,
    }
}

/// Total spectral energy (Parseval check helper): `sum |X_k|^2 / n`.
pub fn spectral_energy(spec: &[Complex]) -> f64 {
    if spec.is_empty() {
        return 0.0;
    }
    spec.iter().map(|z| z.re * z.re + z.im * z.im).sum::<f64>() / spec.len() as f64
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b} +/- {tol}, got {a}");
    }

    /// Naive O(n^2) DFT for validation.
    fn dft(data: &[f64]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (t, &x) in data.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * k as f64 * t as f64 / n as f64;
                    acc = acc.add(Complex::new(x * ang.cos(), x * ang.sin()));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let data: Vec<f64> = (0..32)
            .map(|i| (i as f64 * 0.7).sin() + 0.3 * i as f64)
            .collect();
        let mut fast: Vec<Complex> = data.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_in_place(&mut fast);
        let slow = dft(&data);
        for (f, s) in fast.iter().zip(&slow) {
            close(f.re, s.re, 1e-9);
            close(f.im, s.im, 1e-9);
        }
    }

    #[test]
    fn fft_roundtrip_identity() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 37) % 17) as f64).collect();
        let mut buf: Vec<Complex> = data.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        for (z, &x) in buf.iter().zip(&data) {
            close(z.re, x, 1e-9);
            close(z.im, 0.0, 1e-9);
        }
    }

    #[test]
    fn fft_parseval() {
        let data: Vec<f64> = (0..128).map(|i| (i as f64 * 0.13).cos() * 2.0).collect();
        let time_energy: f64 = data.iter().map(|x| x * x).sum();
        let mut buf: Vec<Complex> = data.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_in_place(&mut buf);
        close(spectral_energy(&buf), time_energy, 1e-6);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 16];
        buf[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut buf);
        for z in &buf {
            close(z.abs(), 1.0, 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex::default(); 12];
        fft_in_place(&mut buf);
    }

    #[test]
    fn spectrum_recovers_sinusoid() {
        // 256-second period at 1 Hz sampling lands exactly on bin 16 of a
        // 4096-point FFT, so the amplitude is recovered without leakage.
        let sample_hz = 1.0;
        let period = 256.0;
        let n = 4096;
        let data: Vec<f64> = (0..n)
            .map(|i| 5.0 * (2.0 * std::f64::consts::PI * i as f64 / period).sin())
            .collect();
        let dom = dominant_component(&data, sample_hz).unwrap();
        close(dom.frequency_hz, 1.0 / period, 1e-9);
        close(dom.amplitude, 5.0, 1e-9);
        close(dom.period_s, period, 1e-6);
    }

    #[test]
    fn spectrum_near_paper_frequency_with_leakage() {
        // The paper's 200 s swing does not land on an FFT bin; the dominant
        // frequency must still be recovered to within one bin and the
        // amplitude to within the worst-case scalloping loss (~36 %).
        let n = 4096;
        let data: Vec<f64> = (0..n)
            .map(|i| 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 200.0).sin())
            .collect();
        let dom = dominant_component(&data, 1.0).unwrap();
        close(dom.frequency_hz, 0.005, 1.0 / n as f64);
        assert!(dom.amplitude > 5.0 * 0.6 && dom.amplitude <= 5.0 + 1e-9);
    }

    #[test]
    fn spectrum_two_tones_picks_larger() {
        let n = 2048;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                1.0 * (2.0 * std::f64::consts::PI * t / 100.0).sin()
                    + 4.0 * (2.0 * std::f64::consts::PI * t / 333.0).sin()
            })
            .collect();
        let dom = dominant_component(&data, 1.0).unwrap();
        close(dom.frequency_hz, 1.0 / 333.0, 0.001);
    }

    #[test]
    fn spectrum_handles_short_input() {
        assert!(dominant_component(&[1.0, 2.0], 1.0).is_none());
        let (f, a) = amplitude_spectrum(&[], 1.0);
        assert!(f.is_empty() && a.is_empty());
    }

    #[test]
    fn fft_padded_empty() {
        assert!(fft_padded(&[]).is_empty());
    }

    #[test]
    fn spectrogram_tracks_mode_change() {
        // First half: 64 s period; second half: 16 s period (1 Hz samples).
        let n = 2048;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                let period = if i < n / 2 { 64.0 } else { 16.0 };
                3.0 * (2.0 * std::f64::consts::PI * t / period).sin()
            })
            .collect();
        let sg = spectrogram(&data, 1.0, 256, 128);
        assert!(!sg.times_s.is_empty());
        let dom = sg.dominant_per_window();
        let early = dom[0];
        let late = *dom.last().unwrap();
        assert!((early - 1.0 / 64.0).abs() < 0.006, "early dom {early}");
        assert!((late - 1.0 / 16.0).abs() < 0.006, "late dom {late}");
    }

    #[test]
    fn spectrogram_amplitude_scaling() {
        let n = 1024;
        let data: Vec<f64> = (0..n)
            .map(|i| 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 32.0).sin())
            .collect();
        let sg = spectrogram(&data, 1.0, 256, 256);
        let k = sg
            .freqs_hz
            .iter()
            .position(|&f| (f - 1.0 / 32.0).abs() < 1e-9)
            .expect("bin exists");
        for w in 0..sg.times_s.len() {
            assert!(
                (sg.at(w, k) - 5.0).abs() < 0.5,
                "amplitude {} at window {w}",
                sg.at(w, k)
            );
        }
    }

    #[test]
    #[should_panic(expected = "hop must be positive")]
    fn spectrogram_rejects_zero_hop() {
        spectrogram(&[0.0; 64], 1.0, 16, 0);
    }

    #[test]
    fn fft_linearity() {
        let a: Vec<f64> = (0..64).map(|i| (i as f64 * 0.31).sin()).collect();
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.17).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + 3.0 * y).collect();

        let fa = fft_padded(&a);
        let fb = fft_padded(&b);
        let fsum = fft_padded(&sum);
        for i in 0..fa.len() {
            close(fsum[i].re, 2.0 * fa[i].re + 3.0 * fb[i].re, 1e-9);
            close(fsum[i].im, 2.0 * fa[i].im + 3.0 * fb[i].im, 1e-9);
        }
    }
}
