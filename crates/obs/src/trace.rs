//! Structured tracing: deterministic, low-overhead event capture with
//! Perfetto-compatible export.
//!
//! A [`TraceCollector`] records every [`crate::span::span`] open/close as a
//! timestamped duration event into a bounded per-thread ring buffer. The
//! buffer is preallocated at registration time, so the hot path performs no
//! allocation after warm-up; each thread owns its buffer exclusively, so the
//! guarding mutex is uncontended (exporters only read after all recording
//! threads have quiesced at the pool barrier).
//!
//! Two clock modes:
//!
//! - [`TraceClock::Virtual`] — timestamps are deterministic ticks drawn from
//!   a shared atomic counter. Same-seed runs produce byte-identical traces.
//!   Pool activity is synthesized post-barrier from the deterministic chunk
//!   grid (the canonical schedule), never from live worker scheduling.
//! - [`TraceClock::Wall`] — timestamps are microseconds since collector
//!   creation. Real scheduling, real durations, not deterministic.
//!
//! Exporters: [`write_chrome_json`] (Chrome Trace Event JSON, loads in
//! Perfetto and `chrome://tracing`), [`write_folded`] (flamegraph-compatible
//! folded stacks) and [`span_stats`] (compact per-stage self/child time,
//! merged into the `summit-obs/2` report by [`crate::expose`]).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Schema tag written by every trace exporter.
pub const TRACE_SCHEMA: &str = "summit-trace/1";

/// Default per-thread ring capacity (events), preallocated at registration.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// The single process id used for every exported event.
const TRACE_PID: u32 = 1;

/// Track id assigned to the main thread.
pub const MAIN_TID: u32 = 1;

/// Track id of worker `summit-par-0`; worker `N` gets `WORKER_TID_BASE + N`.
pub const WORKER_TID_BASE: u32 = 101;

/// Timestamp source for a collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClock {
    /// Deterministic tick counter; same-seed traces are byte-identical.
    Virtual,
    /// Microseconds since collector creation; not deterministic.
    Wall,
}

impl TraceClock {
    /// Lowercase label used in exported artifacts.
    pub fn label(self) -> &'static str {
        match self {
            TraceClock::Virtual => "virtual",
            TraceClock::Wall => "wall",
        }
    }

    /// Unit of exported timestamps under this clock.
    pub fn unit(self) -> &'static str {
        match self {
            TraceClock::Virtual => "ticks",
            TraceClock::Wall => "us",
        }
    }
}

/// Event kinds mirroring the Chrome Trace Event phases we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// `ph: "B"` — span opened.
    Begin,
    /// `ph: "E"` — span closed.
    End,
    /// `ph: "X"` — complete event with a duration.
    Complete,
    /// `ph: "i"` — instant marker.
    Mark,
    /// `ph: "C"` — counter sample.
    Counter,
}

impl Kind {
    fn ph(self) -> &'static str {
        match self {
            Kind::Begin => "B",
            Kind::End => "E",
            Kind::Complete => "X",
            Kind::Mark => "i",
            Kind::Counter => "C",
        }
    }
}

/// One recorded event. `track == 0` means "the recording thread's tid";
/// synthesized pool events override it to place events on worker tracks.
#[derive(Debug, Clone, Copy)]
struct Event {
    ts: u64,
    dur: u64,
    name: u32,
    kind: Kind,
    track: u32,
    epoch: u64,
    chunk: i64,
    value: f64,
}

struct BufState {
    events: Vec<Event>,
    dropped: u64,
}

struct ThreadBuf {
    tid: u32,
    state: Mutex<BufState>,
}

impl ThreadBuf {
    fn record(&self, capacity: usize, ev: Event) {
        let mut st = self.state.lock();
        if st.events.len() < capacity {
            st.events.push(ev);
        } else {
            st.dropped += 1;
        }
    }
}

#[derive(Default)]
struct Names {
    by_name: BTreeMap<String, u32>,
    list: Vec<String>,
}

struct Inner {
    id: usize,
    clock: TraceClock,
    capacity: usize,
    ticks: AtomicU64,
    epochs: AtomicU64,
    origin: Instant,
    names: Mutex<Names>,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    tracks: Mutex<BTreeMap<u32, String>>,
    anon_tids: AtomicU64,
}

static COLLECTOR_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TRACE_STACK: RefCell<Vec<TraceCollector>> = const { RefCell::new(Vec::new()) };
    static THREAD_BUF: RefCell<Vec<(usize, Arc<ThreadBuf>)>> = const { RefCell::new(Vec::new()) };
    static SUPPRESS: Cell<usize> = const { Cell::new(0) };
}

/// A handle to a shared trace buffer; cheap to clone.
#[derive(Clone)]
pub struct TraceCollector {
    inner: Arc<Inner>,
}

impl TraceCollector {
    /// Create a collector with [`DEFAULT_RING_CAPACITY`] events per thread.
    pub fn new(clock: TraceClock) -> Self {
        Self::with_capacity(clock, DEFAULT_RING_CAPACITY)
    }

    /// Create a collector with an explicit per-thread ring capacity.
    pub fn with_capacity(clock: TraceClock, capacity: usize) -> Self {
        let id = COLLECTOR_IDS.fetch_add(1, Ordering::Relaxed) as usize;
        TraceCollector {
            inner: Arc::new(Inner {
                id,
                clock,
                capacity: capacity.max(1),
                ticks: AtomicU64::new(0),
                epochs: AtomicU64::new(0),
                origin: Instant::now(),
                names: Mutex::new(Names::default()),
                threads: Mutex::new(Vec::new()),
                tracks: Mutex::new(BTreeMap::new()),
                anon_tids: AtomicU64::new(2),
            }),
        }
    }

    /// The clock mode this collector stamps events with.
    pub fn clock(&self) -> TraceClock {
        self.inner.clock
    }

    /// Install this collector on the current thread; spans opened while the
    /// returned guard lives are recorded. Guards nest like scoped registries.
    #[must_use = "dropping the scope immediately uninstalls the collector"]
    pub fn install(&self) -> TraceScope {
        TRACE_STACK.with(|s| s.borrow_mut().push(self.clone()));
        TraceScope { _priv: () }
    }

    /// Install on a pool worker thread. Under the virtual clock this returns
    /// `None`: live worker events are scheduling-dependent, so pool activity
    /// is synthesized post-barrier from the canonical chunk grid instead.
    pub fn install_worker(&self) -> Option<TraceScope> {
        match self.inner.clock {
            TraceClock::Virtual => None,
            TraceClock::Wall => Some(self.install()),
        }
    }

    /// Allocate the next 1-based pool-epoch id.
    pub fn begin_epoch(&self) -> u64 {
        self.inner.epochs.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current timestamp: a fresh tick (virtual) or µs since creation (wall).
    pub fn now(&self) -> u64 {
        match self.inner.clock {
            TraceClock::Virtual => self.inner.ticks.fetch_add(1, Ordering::Relaxed),
            TraceClock::Wall => self.inner.origin.elapsed().as_micros() as u64,
        }
    }

    fn intern(&self, name: &str) -> u32 {
        let mut names = self.inner.names.lock();
        if let Some(&id) = names.by_name.get(name) {
            return id;
        }
        let id = names.list.len() as u32;
        names.list.push(name.to_string());
        names.by_name.insert(name.to_string(), id);
        id
    }

    fn thread_buf(&self) -> Arc<ThreadBuf> {
        let id = self.inner.id;
        THREAD_BUF.with(|cache| {
            if let Some((_, buf)) = cache.borrow().iter().find(|(cid, _)| *cid == id) {
                return Arc::clone(buf);
            }
            let buf = self.register_current_thread();
            cache.borrow_mut().push((id, Arc::clone(&buf)));
            buf
        })
    }

    fn register_current_thread(&self) -> Arc<ThreadBuf> {
        let current = std::thread::current();
        let name = current.name().unwrap_or("");
        let (tid, label) = if name == "main" {
            (MAIN_TID, "main".to_string())
        } else if let Some(n) = name
            .strip_prefix("summit-par-")
            .and_then(|n| n.parse::<u32>().ok())
        {
            (WORKER_TID_BASE + n, name.to_string())
        } else {
            let tid = self.inner.anon_tids.fetch_add(1, Ordering::Relaxed) as u32;
            let label = if name.is_empty() {
                format!("thread-{tid}")
            } else {
                name.to_string()
            };
            (tid, label)
        };
        self.inner.tracks.lock().entry(tid).or_insert(label);
        let buf = Arc::new(ThreadBuf {
            tid,
            state: Mutex::new(BufState {
                events: Vec::with_capacity(self.inner.capacity),
                dropped: 0,
            }),
        });
        self.inner.threads.lock().push(Arc::clone(&buf));
        buf
    }

    fn record(&self, ev: Event) {
        self.thread_buf().record(self.inner.capacity, ev);
    }

    pub(crate) fn span_open(&self, name: &str) {
        let name = self.intern(name);
        let ts = self.now();
        self.record(Event {
            ts,
            dur: 0,
            name,
            kind: Kind::Begin,
            track: 0,
            epoch: 0,
            chunk: -1,
            value: 0.0,
        });
    }

    pub(crate) fn span_close(&self, name: &str) {
        let name = self.intern(name);
        let ts = self.now();
        self.record(Event {
            ts,
            dur: 0,
            name,
            kind: Kind::End,
            track: 0,
            epoch: 0,
            chunk: -1,
            value: 0.0,
        });
    }

    /// Record a counter sample (rendered as a counter track in Perfetto).
    pub fn counter(&self, name: &str, value: f64) {
        let name = self.intern(name);
        let ts = self.now();
        self.record(Event {
            ts,
            dur: 0,
            name,
            kind: Kind::Counter,
            track: 0,
            epoch: 0,
            chunk: -1,
            value,
        });
    }

    /// Record an instant marker, optionally tagged with a pool epoch.
    pub fn instant(&self, name: &str, epoch: u64) {
        let name = self.intern(name);
        let ts = self.now();
        self.record(Event {
            ts,
            dur: 0,
            name,
            kind: Kind::Mark,
            track: 0,
            epoch,
            chunk: -1,
            value: 0.0,
        });
    }

    /// Record a complete (duration) event that started at `start_ts`.
    /// `chunk < 0` marks an epoch summary rather than a single chunk; the
    /// folded/stats exporters skip those to avoid double-counting.
    pub fn complete(&self, name: &str, start_ts: u64, epoch: u64, chunk: i64) {
        let name = self.intern(name);
        let end = self.now();
        self.record(Event {
            ts: start_ts,
            dur: end.saturating_sub(start_ts),
            name,
            kind: Kind::Complete,
            track: 0,
            epoch,
            chunk,
            value: 0.0,
        });
    }

    /// Synthesize one pool epoch from the canonical schedule: band `b >= 1`
    /// of the deterministic chunk grid maps to worker track `100 + b`
    /// (labelled `summit-par-{b-1}`), band 0 stays on the calling thread.
    /// Used under the virtual clock, where live worker events would be
    /// scheduling-dependent; mirrors how `summit_par_steal_total` stays
    /// global-only for the same reason.
    pub fn pool_epoch_virtual(
        &self,
        epoch_name: &str,
        chunk_name: &str,
        epoch: u64,
        band_sizes: &[usize],
    ) {
        let tasks: usize = band_sizes.iter().sum();
        let active: Vec<usize> = (1..band_sizes.len())
            .filter(|&b| band_sizes[b] > 0)
            .collect();
        let total = 2 + tasks as u64 + 2 * active.len() as u64;
        let base = self.inner.ticks.fetch_add(total, Ordering::Relaxed);
        {
            let mut tracks = self.inner.tracks.lock();
            for &b in &active {
                let tid = 100 + b as u32;
                tracks
                    .entry(tid)
                    .or_insert_with(|| format!("summit-par-{}", b - 1));
            }
        }
        let epoch_id = self.intern(epoch_name);
        let chunk_id = self.intern(chunk_name);
        let unpark = self.intern("unpark");
        let park = self.intern("park");
        let buf = self.thread_buf();
        let cap = self.inner.capacity;
        let mut t = base;
        let epoch_start = t;
        t += 1;
        for &b in &active {
            buf.record(
                cap,
                Event {
                    ts: t,
                    dur: 0,
                    name: unpark,
                    kind: Kind::Mark,
                    track: 100 + b as u32,
                    epoch,
                    chunk: -1,
                    value: 0.0,
                },
            );
            t += 1;
        }
        let mut chunk = 0i64;
        for (b, &size) in band_sizes.iter().enumerate() {
            let track = if b == 0 { 0 } else { 100 + b as u32 };
            for _ in 0..size {
                buf.record(
                    cap,
                    Event {
                        ts: t,
                        dur: 1,
                        name: chunk_id,
                        kind: Kind::Complete,
                        track,
                        epoch,
                        chunk,
                        value: 0.0,
                    },
                );
                t += 1;
                chunk += 1;
            }
        }
        for &b in &active {
            buf.record(
                cap,
                Event {
                    ts: t,
                    dur: 0,
                    name: park,
                    kind: Kind::Mark,
                    track: 100 + b as u32,
                    epoch,
                    chunk: -1,
                    value: 0.0,
                },
            );
            t += 1;
        }
        buf.record(
            cap,
            Event {
                ts: epoch_start,
                dur: total,
                name: epoch_id,
                kind: Kind::Complete,
                track: 0,
                epoch,
                chunk: -1,
                value: 0.0,
            },
        );
    }

    /// Drain a consistent view of everything recorded so far. Call after all
    /// recording threads have quiesced (e.g. past the pool barrier).
    pub fn snapshot(&self) -> TraceSnapshot {
        let names = self.inner.names.lock().list.clone();
        let tracks: Vec<(u32, String)> = self
            .inner
            .tracks
            .lock()
            .iter()
            .map(|(tid, label)| (*tid, label.clone()))
            .collect();
        let mut events = Vec::new();
        let mut dropped_total = 0u64;
        for buf in self.inner.threads.lock().iter() {
            let st = buf.state.lock();
            dropped_total += st.dropped;
            for ev in &st.events {
                let mut ev = *ev;
                if ev.track == 0 {
                    ev.track = buf.tid;
                }
                events.push(ev);
            }
        }
        events.sort_by_key(|e| (e.ts, e.track));
        TraceSnapshot {
            clock: self.inner.clock,
            names,
            tracks,
            events,
            dropped_total,
        }
    }
}

/// RAII guard returned by [`TraceCollector::install`].
pub struct TraceScope {
    _priv: (),
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        TRACE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// RAII guard returned by [`suppress`]; while alive, [`current`] returns
/// `None` on this thread.
pub struct SuppressGuard {
    _priv: (),
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS.with(|s| s.set(s.get().saturating_sub(1)));
    }
}

/// Suppress trace capture on this thread until the guard drops. The pool
/// dispatcher uses this under the virtual clock so that spans opened inside
/// epoch execution (whose interleaving is scheduling-dependent) stay out of
/// the deterministic trace; the pool records the canonical schedule instead.
#[must_use = "suppression ends when the guard drops"]
pub fn suppress() -> SuppressGuard {
    SUPPRESS.with(|s| s.set(s.get() + 1));
    SuppressGuard { _priv: () }
}

/// The collector installed innermost on this thread, unless suppressed.
pub fn current() -> Option<TraceCollector> {
    if SUPPRESS.with(Cell::get) > 0 {
        return None;
    }
    TRACE_STACK.with(|s| s.borrow().last().cloned())
}

/// Hook called by [`crate::span::span`] on open.
pub(crate) fn span_open(name: &str) {
    if let Some(tc) = current() {
        tc.span_open(name);
    }
}

/// Hook called by `SpanGuard::drop` on close.
pub(crate) fn span_close(name: &str) {
    if let Some(tc) = current() {
        tc.span_close(name);
    }
}

/// An immutable, export-ready view of a trace.
pub struct TraceSnapshot {
    /// Clock mode the events were stamped with.
    pub clock: TraceClock,
    names: Vec<String>,
    tracks: Vec<(u32, String)>,
    events: Vec<Event>,
    /// Events discarded because a per-thread ring was full.
    pub dropped_total: u64,
}

impl TraceSnapshot {
    /// Number of events captured (excluding dropped ones).
    pub fn events_total(&self) -> u64 {
        self.events.len() as u64
    }

    /// Thread tracks `(tid, label)` registered during capture, tid-sorted.
    pub fn tracks(&self) -> &[(u32, String)] {
        &self.tracks
    }

    fn name(&self, id: u32) -> &str {
        self.names.get(id as usize).map_or("?", String::as_str)
    }
}

/// Write a Chrome Trace Event JSON document (loads in Perfetto and
/// `chrome://tracing`). Deterministic for a deterministic snapshot.
pub fn write_chrome_json<W: Write>(out: &mut W, snap: &TraceSnapshot) -> io::Result<()> {
    writeln!(out, "{{")?;
    writeln!(out, "  \"schema\": \"{}\",", TRACE_SCHEMA)?;
    writeln!(out, "  \"displayTimeUnit\": \"ms\",")?;
    writeln!(out, "  \"clock\": \"{}\",", snap.clock.label())?;
    writeln!(out, "  \"dropped_events\": {},", snap.dropped_total)?;
    writeln!(out, "  \"traceEvents\": [")?;
    let mut first = true;
    let sep = |out: &mut W, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
        } else {
            writeln!(out, ",")?;
        }
        Ok(())
    };
    sep(out, &mut first)?;
    write!(
        out,
        "    {{\"ph\": \"M\", \"pid\": {TRACE_PID}, \"tid\": 0, \"name\": \"process_name\", \"args\": {{\"name\": \"summit-repro\"}}}}"
    )?;
    for (tid, label) in &snap.tracks {
        sep(out, &mut first)?;
        write!(
            out,
            "    {{\"ph\": \"M\", \"pid\": {TRACE_PID}, \"tid\": {tid}, \"name\": \"thread_name\", \"args\": {{\"name\": \"{}\"}}}}",
            crate::expose::json_escape(label)
        )?;
    }
    for ev in &snap.events {
        sep(out, &mut first)?;
        write!(
            out,
            "    {{\"ph\": \"{}\", \"pid\": {TRACE_PID}, \"tid\": {}, \"ts\": {}, \"name\": \"{}\"",
            ev.kind.ph(),
            ev.track,
            ev.ts,
            crate::expose::json_escape(snap.name(ev.name))
        )?;
        match ev.kind {
            Kind::Complete => write!(out, ", \"dur\": {}", ev.dur)?,
            Kind::Mark => write!(out, ", \"s\": \"t\"")?,
            _ => {}
        }
        if ev.kind == Kind::Counter {
            write!(
                out,
                ", \"args\": {{\"value\": {}}}",
                crate::expose::json_f64(ev.value)
            )?;
        } else if ev.epoch > 0 {
            if ev.chunk >= 0 {
                write!(
                    out,
                    ", \"args\": {{\"epoch\": {}, \"chunk\": {}}}",
                    ev.epoch, ev.chunk
                )?;
            } else {
                write!(out, ", \"args\": {{\"epoch\": {}}}", ev.epoch)?;
            }
        }
        write!(out, "}}")?;
    }
    writeln!(out)?;
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    Ok(())
}

struct Frame {
    name: u32,
    start: u64,
    child: u64,
}

/// Replay one track's events through a span stack, reporting every closed
/// frame to `emit(stack_without_frame, frame_name, self_time, total_time)`.
fn replay_track<F: FnMut(&[u32], u32, u64, u64)>(events: &[&Event], emit: &mut F) {
    let mut stack: Vec<Frame> = Vec::new();
    for ev in events {
        match ev.kind {
            Kind::Begin => stack.push(Frame {
                name: ev.name,
                start: ev.ts,
                child: 0,
            }),
            Kind::End => {
                if let Some(pos) = stack.iter().rposition(|f| f.name == ev.name) {
                    // Anything opened above a mismatched close is abandoned.
                    stack.truncate(pos + 1);
                    if let Some(frame) = stack.pop() {
                        let total = ev.ts.saturating_sub(frame.start);
                        let self_time = total.saturating_sub(frame.child);
                        let names: Vec<u32> = stack.iter().map(|f| f.name).collect();
                        emit(&names, frame.name, self_time, total);
                        if let Some(parent) = stack.last_mut() {
                            parent.child += total;
                        }
                    }
                }
            }
            Kind::Complete => {
                // Epoch summaries (chunk < 0 with an epoch tag) overlap their
                // chunk events; skip them so time is not double-counted.
                if ev.epoch > 0 && ev.chunk < 0 {
                    continue;
                }
                let names: Vec<u32> = stack.iter().map(|f| f.name).collect();
                emit(&names, ev.name, ev.dur, ev.dur);
                if let Some(parent) = stack.last_mut() {
                    parent.child += ev.dur;
                }
            }
            Kind::Mark | Kind::Counter => {}
        }
    }
}

fn per_track(snap: &TraceSnapshot) -> BTreeMap<u32, Vec<&Event>> {
    let mut by_track: BTreeMap<u32, Vec<&Event>> = BTreeMap::new();
    for ev in &snap.events {
        by_track.entry(ev.track).or_default().push(ev);
    }
    by_track
}

/// Write flamegraph-compatible folded stacks: one `track;span;... value`
/// line per unique stack, value in self-time units of the snapshot's clock.
pub fn write_folded<W: Write>(out: &mut W, snap: &TraceSnapshot) -> io::Result<()> {
    writeln!(
        out,
        "# {} folded self-time ({})",
        TRACE_SCHEMA,
        snap.clock.unit()
    )?;
    let labels: BTreeMap<u32, &str> = snap
        .tracks
        .iter()
        .map(|(tid, label)| (*tid, label.as_str()))
        .collect();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (tid, events) in per_track(snap) {
        let label = labels.get(&tid).copied().unwrap_or("unknown");
        replay_track(&events, &mut |stack, name, self_time, _total| {
            if self_time == 0 {
                return;
            }
            let mut line = String::from(label);
            for &id in stack {
                line.push(';');
                line.push_str(snap.name(id));
            }
            line.push(';');
            line.push_str(snap.name(name));
            *folded.entry(line).or_insert(0) += self_time;
        });
    }
    for (line, value) in folded {
        writeln!(out, "{line} {value}")?;
    }
    Ok(())
}

/// Per-stage timing aggregated from a snapshot.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Span or event name.
    pub name: String,
    /// Number of closed occurrences.
    pub count: u64,
    /// Total time across occurrences (clock units).
    pub total: u64,
    /// Time not attributed to child spans or pool chunks.
    pub self_time: u64,
    /// Time attributed to nested spans / pool chunks.
    pub child_time: u64,
}

/// Compact trace summary merged into the `summit-obs/2` report.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Clock mode of the underlying snapshot.
    pub clock: TraceClock,
    /// Events captured.
    pub events_total: u64,
    /// Events dropped on ring wrap.
    pub dropped_total: u64,
    /// Per-stage aggregates, name-sorted.
    pub stages: Vec<StageStats>,
}

/// Aggregate per-stage self/child time from a snapshot.
pub fn span_stats(snap: &TraceSnapshot) -> TraceStats {
    let mut by_name: BTreeMap<String, StageStats> = BTreeMap::new();
    for (_tid, events) in per_track(snap) {
        replay_track(&events, &mut |_stack, name, self_time, total| {
            let name = snap.name(name);
            let entry = by_name
                .entry(name.to_string())
                .or_insert_with(|| StageStats {
                    name: name.to_string(),
                    count: 0,
                    total: 0,
                    self_time: 0,
                    child_time: 0,
                });
            entry.count += 1;
            entry.total += total;
            entry.self_time += self_time;
            entry.child_time += total.saturating_sub(self_time);
        });
    }
    TraceStats {
        clock: snap.clock,
        events_total: snap.events_total(),
        dropped_total: snap.dropped_total,
        stages: by_name.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn collector() -> TraceCollector {
        TraceCollector::new(TraceClock::Virtual)
    }

    #[test]
    fn interner_dedups_names() {
        let tc = collector();
        assert_eq!(tc.intern("a"), tc.intern("a"));
        assert_ne!(tc.intern("a"), tc.intern("b"));
    }

    #[test]
    fn virtual_clock_is_monotonic_and_distinct() {
        let tc = collector();
        let a = tc.now();
        let b = tc.now();
        let c = tc.now();
        assert!(a < b && b < c);
    }

    #[test]
    fn ring_wrap_accounts_for_every_dropped_event() {
        let tc = TraceCollector::with_capacity(TraceClock::Virtual, 8);
        let _scope = tc.install();
        for _ in 0..20 {
            let _g = crate::span::span("summit_test_wrap");
        }
        drop(_scope);
        let snap = tc.snapshot();
        assert_eq!(snap.events_total(), 8);
        assert_eq!(snap.dropped_total, 40 - 8);
    }

    #[test]
    fn suppress_hides_the_collector() {
        let tc = collector();
        let _scope = tc.install();
        assert!(current().is_some());
        {
            let _s = suppress();
            assert!(current().is_none());
            {
                let _s2 = suppress();
                assert!(current().is_none());
            }
            assert!(current().is_none());
        }
        assert!(current().is_some());
    }

    #[test]
    fn span_stats_split_self_and_child_time() {
        let tc = collector();
        let _scope = tc.install();
        {
            let _outer = crate::span::span("summit_test_outer");
            let _ = tc.now(); // outer self-time
            {
                let _inner = crate::span::span("summit_test_inner");
                let _ = tc.now(); // inner self-time
            }
            let _ = tc.now(); // more outer self-time
        }
        drop(_scope);
        let stats = span_stats(&tc.snapshot());
        let outer = stats
            .stages
            .iter()
            .find(|s| s.name == "summit_test_outer")
            .expect("outer stage present");
        let inner = stats
            .stages
            .iter()
            .find(|s| s.name == "summit_test_inner")
            .expect("inner stage present");
        assert_eq!(outer.child_time, inner.total);
        assert_eq!(outer.total, outer.self_time + outer.child_time);
        assert!(inner.child_time == 0);
        assert!(outer.self_time > 0 && inner.self_time > 0);
    }

    #[test]
    fn chrome_json_is_schema_tagged_and_balanced() {
        let tc = collector();
        let _scope = tc.install();
        {
            let _g = crate::span::span("summit_test_chrome");
        }
        tc.counter("frames_per_s", 12.5);
        tc.instant("marker", 0);
        drop(_scope);
        let mut out = Vec::new();
        write_chrome_json(&mut out, &tc.snapshot()).expect("write ok");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains(TRACE_SCHEMA));
        assert!(text.contains("\"traceEvents\""));
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn virtual_pool_epoch_is_synthesized_on_worker_tracks() {
        let tc = collector();
        let _scope = tc.install();
        tc.pool_epoch_virtual("par_epoch test", "par_chunk test", 1, &[2, 2, 1]);
        drop(_scope);
        let snap = tc.snapshot();
        let labels: Vec<&str> = snap.tracks().iter().map(|(_, l)| l.as_str()).collect();
        assert!(labels.contains(&"summit-par-0"));
        assert!(labels.contains(&"summit-par-1"));
        // 2 unpark + 5 chunks + 2 park + 1 epoch summary = 10 events.
        assert_eq!(snap.events_total(), 10);
        let stats = span_stats(&snap);
        let chunks = stats
            .stages
            .iter()
            .find(|s| s.name == "par_chunk test")
            .expect("chunk stage");
        assert_eq!(chunks.count, 5);
        // The epoch summary must not double-count into stats.
        assert!(stats.stages.iter().all(|s| s.name != "par_epoch test"));
    }
}
