//! Wall-clock stage timers.
//!
//! A span marks one pipeline stage: creating it increments the
//! deterministic counter `<name>_calls_total` and starts a timer;
//! dropping the guard records the elapsed wall-clock seconds into the
//! histogram `<name>_seconds`. Call counters are bit-reproducible
//! across identically-seeded runs; the `_seconds` histograms are the
//! only nondeterministic metrics the layer produces, and every
//! determinism comparison excludes them by construction (counters
//! only).
//!
//! Spans nest: a thread-local stack tracks the active span names so
//! tests (and debugging) can assert the instrumentation structure, e.g.
//! `["summit_core_run_telemetry", "summit_telemetry_coarsen"]` while
//! coarsening runs inside the telemetry path.

use crate::registry::{Counter, Histogram};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static ACTIVE: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Starts a span named `name` on the current registry (see
/// [`crate::current`]). Hold the returned guard for the duration of the
/// stage: `let _obs = obs::span("summit_core_run_telemetry");`.
#[must_use = "dropping the guard immediately records a ~zero duration"]
pub fn span(name: &str) -> SpanGuard {
    let registry = crate::current();
    let calls = registry.counter(&format!("{name}_calls_total"));
    calls.inc();
    let seconds = registry.histogram(&format!("{name}_seconds"));
    ACTIVE.with(|stack| stack.borrow_mut().push(name.to_string()));
    crate::trace::span_open(name);
    SpanGuard {
        _calls: calls,
        seconds,
        start: Instant::now(),
        name: name.to_string(),
    }
}

/// Names of the spans currently active on this thread, outermost first.
pub fn active_spans() -> Vec<String> {
    ACTIVE.with(|stack| stack.borrow().clone())
}

/// Calls `f` with the innermost active span name on this thread (or
/// `None` outside any span) without cloning the stack — the
/// allocation-free variant of [`active_spans`] for per-execution hot
/// paths such as the thread pool's busy-time attribution.
pub fn with_innermost_span<R>(f: impl FnOnce(Option<&str>) -> R) -> R {
    ACTIVE.with(|stack| {
        let stack = stack.borrow();
        f(stack.last().map(String::as_str))
    })
}

/// Nesting depth of the innermost active span on this thread.
pub fn span_depth() -> usize {
    ACTIVE.with(|stack| stack.borrow().len())
}

/// Pushes `name` onto this thread's active-span stack without recording
/// any metric or trace event. The thread pool uses this on worker threads
/// so that spans opened inside parallel chunks (and the pool's own
/// busy-time attribution) see the dispatching stage as their parent
/// instead of an orphan root.
#[must_use = "the stage label pops when the guard drops"]
pub fn stage_scope(name: &str) -> StageScope {
    ACTIVE.with(|stack| stack.borrow_mut().push(name.to_string()));
    StageScope {
        name: name.to_string(),
    }
}

/// RAII guard returned by [`stage_scope`]; pops the label on drop.
#[derive(Debug)]
pub struct StageScope {
    name: String,
}

impl Drop for StageScope {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(i) = stack.iter().rposition(|n| n == &self.name) {
                stack.remove(i);
            }
        });
    }
}

/// Live timer for one stage; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    _calls: Counter,
    seconds: Histogram,
    start: Instant,
    name: String,
}

impl SpanGuard {
    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Seconds elapsed since the span started (the guard keeps running
    /// until dropped; this is a mid-flight reading).
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.seconds.observe(self.start.elapsed().as_secs_f64());
        crate::trace::span_close(&self.name);
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop LIFO in straight-line code; tolerate an
            // out-of-order drop by removing the matching name.
            if let Some(i) = stack.iter().rposition(|n| n == &self.name) {
                stack.remove(i);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn span_records_calls_and_duration() {
        let r = Registry::new();
        let _scope = r.install();
        {
            let g = span("summit_test_stage");
            assert_eq!(g.name(), "summit_test_stage");
            assert!(g.elapsed_s() >= 0.0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("summit_test_stage_calls_total"), Some(1));
        let h = snap.histogram("summit_test_stage_seconds").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn spans_nest_and_unwind() {
        let r = Registry::new();
        let _scope = r.install();
        assert_eq!(span_depth(), 0);
        let outer = span("summit_test_outer");
        {
            let _inner = span("summit_test_inner");
            assert_eq!(
                active_spans(),
                vec![
                    "summit_test_outer".to_string(),
                    "summit_test_inner".to_string()
                ]
            );
            assert_eq!(span_depth(), 2);
        }
        assert_eq!(active_spans(), vec!["summit_test_outer".to_string()]);
        drop(outer);
        assert_eq!(span_depth(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("summit_test_outer_calls_total"), Some(1));
        assert_eq!(snap.counter("summit_test_inner_calls_total"), Some(1));
    }

    #[test]
    fn with_innermost_span_sees_the_deepest_active_span() {
        let r = Registry::new();
        let _scope = r.install();
        with_innermost_span(|name| assert_eq!(name, None));
        let _outer = span("summit_test_outer");
        with_innermost_span(|name| assert_eq!(name, Some("summit_test_outer")));
        {
            let _inner = span("summit_test_inner");
            with_innermost_span(|name| assert_eq!(name, Some("summit_test_inner")));
        }
        with_innermost_span(|name| assert_eq!(name, Some("summit_test_outer")));
    }

    #[test]
    fn stage_scope_labels_without_metrics() {
        let r = Registry::new();
        let _scope = r.install();
        {
            let _stage = stage_scope("summit_test_dispatched");
            with_innermost_span(|name| assert_eq!(name, Some("summit_test_dispatched")));
        }
        assert_eq!(span_depth(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("summit_test_dispatched_calls_total"), None);
        assert!(snap.histogram("summit_test_dispatched_seconds").is_none());
    }

    #[test]
    fn out_of_order_drop_unwinds_by_name() {
        let r = Registry::new();
        let _scope = r.install();
        let a = span("summit_test_a");
        let b = span("summit_test_b");
        drop(a); // dropped before the inner span
        assert_eq!(active_spans(), vec!["summit_test_b".to_string()]);
        drop(b);
        assert_eq!(span_depth(), 0);
    }
}
