//! Log-bucketed histograms.
//!
//! The pipeline records stage latencies spanning microseconds (a single
//! counter bump) to seconds (a full-floor coarsening pass) and sizes
//! spanning single frames to hundred-thousand-frame batches. A
//! fixed-layout power-of-two bucket grid covers that whole range with 64
//! buckets and no per-histogram configuration, keeps merging trivial
//! (bucket-wise addition), and makes bucket edges bit-exact across runs
//! — the property the determinism tests lean on.
//!
//! Bucket `i` covers the half-open interval `(2^(k-1), 2^k]` with
//! `k = MIN_EXP + i`; the first bucket absorbs everything at or below
//! `2^MIN_EXP` (including zero and negatives, which real durations and
//! sizes never produce but defensive code may), and the last bucket is
//! the `+Inf` overflow. Quantiles are bucketed estimates: the upper edge
//! of the bucket containing the requested rank, clamped to the exact
//! observed `[min, max]`.

/// Exponent of the smallest finite bucket edge: `2^-30` ≈ 0.93 ns.
pub const MIN_EXP: i32 = -30;
/// Exponent of the largest finite bucket edge: `2^32` ≈ 4.3e9.
pub const MAX_EXP: i32 = 32;
/// Finite buckets (one per exponent in `MIN_EXP..=MAX_EXP`) plus the
/// `+Inf` overflow bucket.
pub const BUCKET_COUNT: usize = (MAX_EXP - MIN_EXP + 1) as usize + 1;

/// Index of the bucket a value falls into.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0; // zero, negatives and NaN-guarded callers
    }
    let k = v.log2().ceil();
    if k <= MIN_EXP as f64 {
        0
    } else if k > MAX_EXP as f64 {
        BUCKET_COUNT - 1
    } else {
        (k as i32 - MIN_EXP) as usize
    }
}

/// Upper edge of bucket `i` (`+Inf` for the overflow bucket).
pub fn bucket_upper_edge(i: usize) -> f64 {
    if i >= BUCKET_COUNT - 1 {
        f64::INFINITY
    } else {
        ((MIN_EXP + i as i32) as f64).exp2()
    }
}

/// The mutable histogram state held by a registry.
#[derive(Debug, Clone)]
pub struct HistogramCore {
    counts: [u64; BUCKET_COUNT],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramCore {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKET_COUNT],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Non-finite values are ignored — a NaN
    /// duration or size carries no information and would poison `sum`.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Exact largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Bucketed quantile estimate: the upper edge of the bucket holding
    /// the rank-`q` observation, clamped to the observed `[min, max]`.
    /// `q >= 1` returns the exact max; an empty histogram returns NaN.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || q.is_nan() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper_edge(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds a snapshot back into this histogram: bucket counts map 1:1
    /// (every layout shares the same fixed edge grid) and the summary
    /// moments add exactly. Lets a parent registry absorb the metrics of
    /// a completed scoped run without access to its live cores.
    pub fn merge_snapshot(&mut self, snap: &HistogramSnapshot) {
        for &(edge, count) in &snap.buckets {
            let i = if edge.is_finite() {
                // Edges are exact powers of two, so log2 is exact.
                let k = edge.log2() as i32;
                (k - MIN_EXP).clamp(0, BUCKET_COUNT as i32 - 1) as usize
            } else {
                BUCKET_COUNT - 1
            };
            self.counts[i] += count;
        }
        self.count += snap.count;
        self.sum += snap.sum;
        if snap.count > 0 {
            self.min = self.min.min(snap.min);
            self.max = self.max.max(snap.max);
        }
    }

    /// Folds another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramCore) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Immutable snapshot: summary statistics plus the non-empty buckets
    /// as `(upper_edge, count)` pairs in ascending edge order.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (bucket_upper_edge(i), c))
                .collect(),
        }
    }
}

/// Point-in-time view of a histogram, as captured by
/// [`crate::registry::Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Exact smallest observation (NaN when empty).
    pub min: f64,
    /// Exact largest observation (NaN when empty).
    pub max: f64,
    /// Bucketed median estimate.
    pub p50: f64,
    /// Bucketed 90th-percentile estimate.
    pub p90: f64,
    /// Bucketed 99th-percentile estimate.
    pub p99: f64,
    /// Non-empty buckets as `(upper_edge, count)`, ascending; the edge is
    /// `+Inf` for the overflow bucket.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        // (0.5, 1] -> edge 1; (1, 2] -> edge 2; etc.
        let mut h = HistogramCore::new();
        h.observe(1.0);
        h.observe(1.5);
        h.observe(2.0);
        h.observe(0.5);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(0.5, 1), (1.0, 1), (2.0, 2)]);
    }

    #[test]
    fn exact_powers_land_on_closed_upper_edge() {
        let mut h = HistogramCore::new();
        h.observe(8.0); // (4, 8] — not (8, 16]
        assert_eq!(h.snapshot().buckets, vec![(8.0, 1)]);
        h.observe(8.0 + 1e-9); // nudged past the edge
        assert_eq!(h.snapshot().buckets, vec![(8.0, 1), (16.0, 1)]);
    }

    #[test]
    fn extremes_clamp_to_underflow_and_overflow() {
        let mut h = HistogramCore::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(1e-12); // below 2^-30
        h.observe(1e12); // above 2^32
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[0], (bucket_upper_edge(0), 3));
        assert_eq!(s.buckets[1], (f64::INFINITY, 1));
    }

    #[test]
    fn quantiles_on_known_distribution() {
        // 1..=1000: rank-500 value 500 lives in (256, 512] -> p50 = 512;
        // rank-990 value 990 lives in (512, 1024] -> p99 clamps to max.
        let mut h = HistogramCore::new();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        assert_eq!(h.quantile(0.50), 512.0);
        assert_eq!(h.quantile(0.90), 1000.0); // edge 1024 clamped to max
        assert_eq!(h.quantile(0.99), 1000.0);
        assert_eq!(h.quantile(1.0), 1000.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1000.0);
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500_500.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_lower_clamp_and_empty() {
        let empty = HistogramCore::new();
        assert!(empty.quantile(0.5).is_nan());
        assert!(empty.min().is_nan() && empty.max().is_nan());

        let mut h = HistogramCore::new();
        h.observe(3.0); // (2, 4] — edge 4 clamps down to the exact max 3
        assert_eq!(h.quantile(0.5), 3.0);
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut h = HistogramCore::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        h.observe(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 2.0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = HistogramCore::new();
        let mut b = HistogramCore::new();
        for i in 1..=10 {
            a.observe(i as f64);
            b.observe((i * 100) as f64);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 20);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 1000.0);
        let direct: u64 = m.snapshot().buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(direct, 20);
    }

    #[test]
    fn snapshot_mean() {
        let mut h = HistogramCore::new();
        h.observe(2.0);
        h.observe(4.0);
        assert_eq!(h.snapshot().mean(), 3.0);
        assert!(HistogramCore::new().snapshot().mean().is_nan());
    }
}
