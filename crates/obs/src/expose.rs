//! Snapshot sinks: Prometheus text exposition, JSON and CSV.
//!
//! [`write_prometheus`] emits the text exposition format (version 0.0.4)
//! that Prometheus, VictoriaMetrics and friends scrape — `# TYPE` lines,
//! cumulative `_bucket{le="…"}` series, `_sum`/`_count` per histogram.
//! [`parse_prometheus`] is the matching reader used by the round-trip
//! tests (and handy for asserting on exposed values without a scraper).
//! [`write_json`] and [`write_csv`] are machine-readable snapshot dumps;
//! the JSON shape is what `obs_report` persists as `BENCH_obs.json`.
//! JSON is hand-assembled because the workspace's vendored `serde` is a
//! no-op stub (see `compat/serde`).

use crate::registry::Snapshot;
use crate::trace::TraceStats;
use std::io::{self, Write};

/// Schema tag written at the top of every JSON snapshot report.
pub const OBS_SCHEMA: &str = "summit-obs/2";

/// Formats an f64 the way the exposition format expects.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Writes the snapshot in Prometheus text exposition format.
pub fn write_prometheus<W: Write>(out: &mut W, snapshot: &Snapshot) -> io::Result<()> {
    for (name, v) in &snapshot.counters {
        writeln!(out, "# TYPE {name} counter")?;
        writeln!(out, "{name} {v}")?;
    }
    for (name, v) in &snapshot.gauges {
        writeln!(out, "# TYPE {name} gauge")?;
        writeln!(out, "{name} {}", prom_f64(*v))?;
    }
    for (name, h) in &snapshot.histograms {
        writeln!(out, "# TYPE {name} histogram")?;
        let mut cumulative = 0u64;
        for &(edge, count) in &h.buckets {
            cumulative += count;
            if edge.is_finite() {
                writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    prom_f64(edge)
                )?;
            }
        }
        writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count)?;
        writeln!(out, "{name}_sum {}", prom_f64(h.sum))?;
        writeln!(out, "{name}_count {}", h.count)?;
    }
    Ok(())
}

/// One sample parsed back from exposition text.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// The `le` label for `_bucket` samples.
    pub le: Option<f64>,
    /// Sample value.
    pub value: f64,
}

/// A malformed exposition line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// Parses text exposition output back into samples, validating the
/// subset of the format [`write_prometheus`] emits (no exotic labels,
/// no timestamps). Comment (`#`) and blank lines are skipped.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: &str| ParseError {
            line: i + 1,
            message: message.to_string(),
        };
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("expected `name value`"))?;
        let value = parse_value(value_part.trim()).ok_or_else(|| err("unparseable value"))?;
        let (name, le) = if let Some((base, rest)) = name_part.split_once('{') {
            let label = rest
                .strip_suffix('}')
                .ok_or_else(|| err("unclosed label set"))?;
            let le_str = label
                .strip_prefix("le=\"")
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| err("only the le label is supported"))?;
            let le = parse_value(le_str).ok_or_else(|| err("unparseable le"))?;
            (base.to_string(), Some(le))
        } else {
            (name_part.to_string(), None)
        };
        if name.is_empty()
            || !name.chars().enumerate().all(|(j, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (j > 0 && c.is_ascii_digit())
            })
        {
            return Err(err("invalid metric name"));
        }
        out.push(Sample { name, le, value });
    }
    Ok(out)
}

/// Formats an f64 as a JSON value (`null` for non-finite).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the snapshot as a JSON object:
///
/// ```json
/// {
///   "schema": "summit-obs/2",
///   "counters": {"name": 123, …},
///   "gauges": {"name": 1.5, …},
///   "histograms": {"name": {"count": …, "sum": …, "min": …, "max": …,
///                            "p50": …, "p90": …, "p99": …,
///                            "buckets": [[le, count], …]}, …},
///   "trace": null
/// }
/// ```
///
/// Non-finite numbers (unset gauges, empty-histogram min/max, the
/// `+Inf` bucket edge) serialize as `null`. The `trace` section is
/// `null` here; [`write_json_with_trace`] fills it from a
/// [`TraceStats`] summary.
pub fn write_json<W: Write>(out: &mut W, snapshot: &Snapshot) -> io::Result<()> {
    write_json_with_trace(out, snapshot, None)
}

/// [`write_json`] with an optional `trace` section: event totals,
/// ring-drop count and per-stage self-time vs child-time from
/// [`crate::trace::span_stats`].
pub fn write_json_with_trace<W: Write>(
    out: &mut W,
    snapshot: &Snapshot,
    trace: Option<&TraceStats>,
) -> io::Result<()> {
    writeln!(out, "{{")?;
    writeln!(out, "  \"schema\": \"{}\",", OBS_SCHEMA)?;
    writeln!(out, "  \"counters\": {{")?;
    for (i, (name, v)) in snapshot.counters.iter().enumerate() {
        let comma = if i + 1 < snapshot.counters.len() {
            ","
        } else {
            ""
        };
        writeln!(out, "    \"{}\": {v}{comma}", json_escape(name))?;
    }
    writeln!(out, "  }},")?;
    writeln!(out, "  \"gauges\": {{")?;
    for (i, (name, v)) in snapshot.gauges.iter().enumerate() {
        let comma = if i + 1 < snapshot.gauges.len() {
            ","
        } else {
            ""
        };
        writeln!(
            out,
            "    \"{}\": {}{comma}",
            json_escape(name),
            json_f64(*v)
        )?;
    }
    writeln!(out, "  }},")?;
    writeln!(out, "  \"histograms\": {{")?;
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|&(edge, count)| format!("[{}, {count}]", json_f64(edge)))
            .collect();
        let comma = if i + 1 < snapshot.histograms.len() {
            ","
        } else {
            ""
        };
        writeln!(
            out,
            "    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}{comma}",
            json_escape(name),
            h.count,
            json_f64(h.sum),
            json_f64(h.min),
            json_f64(h.max),
            json_f64(h.p50),
            json_f64(h.p90),
            json_f64(h.p99),
            buckets.join(", ")
        )?;
    }
    writeln!(out, "  }},")?;
    match trace {
        None => writeln!(out, "  \"trace\": null")?,
        Some(stats) => {
            writeln!(out, "  \"trace\": {{")?;
            writeln!(out, "    \"schema\": \"{}\",", crate::trace::TRACE_SCHEMA)?;
            writeln!(out, "    \"clock\": \"{}\",", stats.clock.label())?;
            writeln!(out, "    \"unit\": \"{}\",", stats.clock.unit())?;
            writeln!(out, "    \"events\": {},", stats.events_total)?;
            writeln!(out, "    \"dropped\": {},", stats.dropped_total)?;
            writeln!(out, "    \"stages\": [")?;
            for (i, s) in stats.stages.iter().enumerate() {
                let comma = if i + 1 < stats.stages.len() { "," } else { "" };
                writeln!(
                    out,
                    "      {{\"name\": \"{}\", \"count\": {}, \"total\": {}, \
                     \"self\": {}, \"child\": {}}}{comma}",
                    json_escape(&s.name),
                    s.count,
                    s.total,
                    s.self_time,
                    s.child_time
                )?;
            }
            writeln!(out, "    ]")?;
            writeln!(out, "  }}")?;
        }
    }
    writeln!(out, "}}")?;
    Ok(())
}

/// Writes the snapshot as CSV, one metric per row. Histogram rows carry
/// the summary columns; counter/gauge rows leave them empty.
pub fn write_csv<W: Write>(out: &mut W, snapshot: &Snapshot) -> io::Result<()> {
    fn cell(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            String::new() // empty cell = missing, matching telemetry::export
        }
    }
    writeln!(out, "kind,name,value,count,sum,min,max,p50,p90,p99")?;
    for (name, v) in &snapshot.counters {
        writeln!(out, "counter,{name},{v},,,,,,,")?;
    }
    for (name, v) in &snapshot.gauges {
        writeln!(out, "gauge,{name},{},,,,,,,", cell(*v))?;
    }
    for (name, h) in &snapshot.histograms {
        writeln!(
            out,
            "histogram,{name},,{},{},{},{},{},{},{}",
            h.count,
            cell(h.sum),
            cell(h.min),
            cell(h.max),
            cell(h.p50),
            cell(h.p90),
            cell(h.p99)
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("summit_test_frames_total").inc_by(42);
        r.gauge("summit_test_rate").set(1.25);
        let h = r.histogram("summit_test_latency_seconds");
        for v in [0.001, 0.002, 0.004, 0.1, 2.0] {
            h.observe(v);
        }
        r
    }

    #[test]
    fn prometheus_round_trip() {
        let r = sample_registry();
        let snap = r.snapshot();
        let mut buf = Vec::new();
        write_prometheus(&mut buf, &snap).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let samples = parse_prometheus(&text).unwrap();

        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.le.is_none())
                .unwrap_or_else(|| panic!("missing sample {name}"))
                .value
        };
        assert_eq!(get("summit_test_frames_total"), 42.0);
        assert_eq!(get("summit_test_rate"), 1.25);
        assert_eq!(get("summit_test_latency_seconds_count"), 5.0);
        assert!((get("summit_test_latency_seconds_sum") - 2.107).abs() < 1e-12);

        // Buckets are cumulative and end at +Inf == count.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "summit_test_latency_seconds_bucket")
            .collect();
        assert!(buckets.len() >= 2);
        let mut last = -1.0;
        for b in &buckets {
            assert!(b.value >= last, "buckets must be cumulative");
            last = b.value;
        }
        let inf = buckets
            .iter()
            .find(|b| b.le == Some(f64::INFINITY))
            .unwrap();
        assert_eq!(inf.value, 5.0);
    }

    #[test]
    fn prometheus_output_is_well_formed() {
        let r = sample_registry();
        let mut buf = Vec::new();
        write_prometheus(&mut buf, &r.snapshot()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# TYPE summit_test_frames_total counter"));
        assert!(text.contains("# TYPE summit_test_rate gauge"));
        assert!(text.contains("# TYPE summit_test_latency_seconds histogram"));
        assert!(text.contains("summit_test_latency_seconds_bucket{le=\"+Inf\"} 5"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_prometheus("no_value_here").is_err());
        assert!(parse_prometheus("name{le=\"0.1\" 3").is_err());
        assert!(parse_prometheus("name{job=\"x\"} 3").is_err());
        assert!(parse_prometheus("bad-name 3").is_err());
        assert!(parse_prometheus("# comment only\n\n").unwrap().is_empty());
        let e = parse_prometheus("ok 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn json_shape_and_null_handling() {
        let r = sample_registry();
        r.gauge("summit_test_unset"); // stays NaN -> null
        let mut buf = Vec::new();
        write_json(&mut buf, &r.snapshot()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"schema\": \"summit-obs/2\""));
        assert!(s.contains("\"summit_test_frames_total\": 42"));
        assert!(s.contains("\"summit_test_unset\": null"));
        assert!(s.contains("\"count\": 5"));
        assert!(s.contains("\"buckets\": ["));
        assert!(s.contains("\"trace\": null"));
        // Balanced braces/brackets — cheap structural sanity check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn json_trace_section_carries_stage_stats() {
        use crate::trace::{span_stats, TraceClock, TraceCollector};
        let r = sample_registry();
        let tc = TraceCollector::new(TraceClock::Virtual);
        let scope = tc.install();
        {
            let _g = crate::span::span("summit_test_traced_stage");
        }
        drop(scope);
        let stats = span_stats(&tc.snapshot());
        let mut buf = Vec::new();
        write_json_with_trace(&mut buf, &r.snapshot(), Some(&stats)).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"trace\": {"));
        assert!(s.contains("\"schema\": \"summit-trace/1\""));
        assert!(s.contains("\"unit\": \"ticks\""));
        assert!(s.contains("\"name\": \"summit_test_traced_stage\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn single_sample_histogram_round_trips() {
        // The degenerate case visible in BENCH_obs.json: one observation,
        // so p50 == p90 == p99 and count == 1.
        let r = Registry::new();
        r.histogram("summit_test_single_seconds").observe(0.125);
        let snap = r.snapshot();
        let h = snap.histogram("summit_test_single_seconds").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.p50, h.p90);
        assert_eq!(h.p90, h.p99);

        let mut buf = Vec::new();
        write_prometheus(&mut buf, &snap).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let samples = parse_prometheus(&text).unwrap();
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.le.is_none())
                .unwrap_or_else(|| panic!("missing sample {name}"))
                .value
        };
        assert_eq!(get("summit_test_single_seconds_count"), 1.0);
        assert_eq!(get("summit_test_single_seconds_sum"), 0.125);
        // Cumulative buckets: every bucket at or above the sample's edge
        // reads 1, and +Inf reads the full count.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "summit_test_single_seconds_bucket")
            .collect();
        assert!(!buckets.is_empty());
        let mut last = 0.0;
        for b in &buckets {
            assert!(b.value == 0.0 || b.value == 1.0);
            assert!(b.value >= last);
            last = b.value;
        }
        let inf = buckets
            .iter()
            .find(|b| b.le == Some(f64::INFINITY))
            .unwrap();
        assert_eq!(inf.value, 1.0);
    }

    #[test]
    fn nan_default_gauge_round_trips() {
        let r = Registry::new();
        r.gauge("summit_test_never_set"); // registered but never set -> NaN
        let mut buf = Vec::new();
        write_prometheus(&mut buf, &r.snapshot()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("summit_test_never_set NaN"));
        let samples = parse_prometheus(&text).unwrap();
        let g = samples
            .iter()
            .find(|s| s.name == "summit_test_never_set")
            .unwrap();
        assert!(g.value.is_nan());
    }

    #[test]
    fn csv_rows_per_metric() {
        let r = sample_registry();
        let mut buf = Vec::new();
        write_csv(&mut buf, &r.snapshot()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "kind,name,value,count,sum,min,max,p50,p90,p99");
        assert!(lines
            .iter()
            .any(|l| l.starts_with("counter,summit_test_frames_total,42")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("gauge,summit_test_rate,1.25")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("histogram,summit_test_latency_seconds,,5")));
    }
}
