//! The metric registry: named counters, gauges and histograms.
//!
//! A [`Registry`] is a cheaply-cloneable handle to a shared metric
//! table. Metrics are created on first use and interned — repeated
//! `counter("x")` calls return handles to the same atomic cell, so hot
//! paths should resolve a handle once and increment through it. Names
//! follow the repo convention `summit_<crate>_<stage>_<unit>` and are
//! sanitized to the Prometheus charset on registration.
//!
//! Storage is `BTreeMap`-backed so snapshots iterate in a deterministic
//! (lexicographic) order: two identically-seeded runs produce
//! byte-identical counter listings, which the determinism tests compare
//! directly.

use crate::histogram::{HistogramCore, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maps a metric name onto the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_`, and a
/// leading digit is prefixed with `_`. Sanitizing (rather than erroring)
/// keeps metric registration infallible on every pipeline path.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// A monotonically-increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A set-to-current-value gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<Mutex<f64>>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        *self.0.lock() = v;
    }

    /// Current value (NaN until first set).
    pub fn get(&self) -> f64 {
        *self.0.lock()
    }
}

/// A log-bucketed histogram handle (see [`crate::histogram`]).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<HistogramCore>>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        self.0.lock().observe(v);
    }

    /// Snapshot of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.lock().snapshot()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<Mutex<f64>>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<HistogramCore>>>>,
}

/// A shared metric table; clones are handles to the same table.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let key = sanitize_name(name);
        let mut map = self.inner.counters.lock();
        Counter(Arc::clone(map.entry(key).or_default()))
    }

    /// Returns (creating on first use) the gauge `name`. Gauges start
    /// at NaN — "never set" renders as a missing value, not a zero.
    pub fn gauge(&self, name: &str) -> Gauge {
        let key = sanitize_name(name);
        let mut map = self.inner.gauges.lock();
        Gauge(Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(Mutex::new(f64::NAN))),
        ))
    }

    /// Returns (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let key = sanitize_name(name);
        let mut map = self.inner.histograms.lock();
        Histogram(Arc::clone(map.entry(key).or_default()))
    }

    /// Captures a point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v.lock()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.lock().snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Folds a snapshot into this registry: counters add, gauges take
    /// the snapshot's value, histogram buckets add. Used by scoped runs
    /// (e.g. `run_telemetry`) to publish their per-run metrics into the
    /// long-lived parent registry after isolating them for a summary.
    pub fn absorb(&self, snapshot: &Snapshot) {
        for (name, v) in &snapshot.counters {
            self.counter(name).inc_by(*v);
        }
        for (name, v) in &snapshot.gauges {
            self.gauge(name).set(*v);
        }
        for (name, h) in &snapshot.histograms {
            let handle = self.histogram(name);
            handle.0.lock().merge_snapshot(h);
        }
    }
}

/// Point-in-time view of a whole registry, sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Histogram summary `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let r = Registry::new();
        let a = r.counter("summit_test_frames_total");
        let b = r.counter("summit_test_frames_total");
        a.inc();
        b.inc_by(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.snapshot().counter("summit_test_frames_total"), Some(5));
    }

    #[test]
    fn gauges_start_nan_and_set() {
        let r = Registry::new();
        let g = r.gauge("summit_test_rate");
        assert!(g.get().is_nan());
        g.set(3.5);
        assert_eq!(r.snapshot().gauge("summit_test_rate"), Some(3.5));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("ok_name:v1"), "ok_name:v1");
        assert_eq!(sanitize_name("bad name/été"), "bad_name__t_");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        let r = Registry::new();
        r.counter("bad name").inc();
        assert_eq!(r.snapshot().counter("bad_name"), Some(1));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter("zz").inc();
        r.counter("aa").inc();
        r.counter("mm").inc();
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn absorb_adds_counters_and_merges_histograms() {
        let child = Registry::new();
        child.counter("summit_test_total").inc_by(7);
        child.gauge("summit_test_rate").set(2.0);
        let h = child.histogram("summit_test_size");
        h.observe(3.0);
        h.observe(300.0);

        let parent = Registry::new();
        parent.counter("summit_test_total").inc_by(1);
        parent.absorb(&child.snapshot());
        parent.absorb(&child.snapshot());

        let snap = parent.snapshot();
        assert_eq!(snap.counter("summit_test_total"), Some(15));
        assert_eq!(snap.gauge("summit_test_rate"), Some(2.0));
        let hs = snap.histogram("summit_test_size").unwrap();
        assert_eq!(hs.count, 4);
        assert_eq!(hs.min, 3.0);
        assert_eq!(hs.max, 300.0);
        assert!((hs.sum - 606.0).abs() < 1e-9);
        assert_eq!(hs.buckets.len(), 2);
    }
}
