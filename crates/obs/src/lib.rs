//! # summit-obs
//!
//! Self-observability layer for the Summit reproduction: the telemetry
//! pipeline we build is itself a monitoring product (paper Section 2 —
//! data "processed, summarized, and rendered to engineers in near
//! real-time"), so the pipeline must be able to watch itself. This
//! crate is the deterministic core that every other workspace crate
//! records into:
//!
//! - [`registry`] — named [`registry::Counter`]s, [`registry::Gauge`]s
//!   and log-bucketed [`registry::Histogram`]s behind a cloneable
//!   [`registry::Registry`] handle with sorted, deterministic
//!   [`registry::Snapshot`]s.
//! - [`span`] — [`span::SpanGuard`] stage timers: each span increments
//!   a deterministic `<name>_calls_total` counter and records its
//!   wall-clock duration into `<name>_seconds` on drop; spans nest via
//!   a thread-local stack.
//! - [`expose`] — sinks: Prometheus text exposition
//!   ([`expose::write_prometheus`] plus the [`expose::parse_prometheus`]
//!   round-trip reader), JSON ([`expose::write_json`], the
//!   `BENCH_obs.json` shape) and CSV ([`expose::write_csv`]).
//! - [`histogram`] — the fixed power-of-two bucket grid shared by every
//!   histogram (bit-identical edges across runs).
//! - [`trace`] — structured tracing: an installable
//!   [`trace::TraceCollector`] records span open/close (and pool-epoch
//!   activity from `compat/rayon`) into bounded per-thread rings, with
//!   deterministic Chrome/Perfetto JSON, folded-stack and span-stats
//!   exporters. When no collector is installed the span hooks cost one
//!   thread-local read.
//!
//! ## Metric naming
//!
//! `summit_<crate>_<stage>_<unit>`, e.g.
//! `summit_telemetry_coarsen_seconds`,
//! `summit_core_frames_offered_total`. Names are sanitized to the
//! Prometheus charset on registration.
//!
//! ## Registry resolution
//!
//! Instrumented code records into [`current()`]: the innermost registry
//! installed on this thread via [`registry::Registry::install`], or the
//! process-wide [`global()`] registry when none is installed. Scoped
//! installs give experiments an isolated per-run snapshot (and make the
//! determinism tests independent of test-runner interleaving); the
//! global registry serves long-lived exposition.
//!
//! ## Determinism contract
//!
//! Counters and size histograms depend only on the seeded simulation,
//! so two identical runs produce identical values. `_seconds`
//! histograms hold wall-clock timings and are *excluded* from every
//! determinism comparison — compare [`registry::Snapshot::counters`]
//! only.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expose;
pub mod histogram;
pub mod registry;
pub mod span;
pub mod trace;

use registry::Registry;
use std::cell::RefCell;
use std::sync::OnceLock;

pub use registry::{Counter, Gauge, Histogram, Snapshot};
pub use span::{active_spans, span, span_depth, with_innermost_span, SpanGuard};

static GLOBAL: OnceLock<Registry> = OnceLock::new();

thread_local! {
    static INSTALLED: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide default registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// The registry instrumented code records into: the innermost
/// [`Registry::install`]ed on this thread, else [`global()`].
pub fn current() -> Registry {
    INSTALLED.with(|stack| {
        stack
            .borrow()
            .last()
            .cloned()
            .unwrap_or_else(|| global().clone())
    })
}

/// Pops its registry from the thread-local install stack on drop.
#[must_use = "dropping the guard immediately uninstalls the registry"]
#[derive(Debug)]
pub struct ScopeGuard(());

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        INSTALLED.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

impl Registry {
    /// Makes this registry the [`current()`] one on this thread until
    /// the returned guard drops. Installs stack: the innermost wins.
    pub fn install(&self) -> ScopeGuard {
        INSTALLED.with(|stack| stack.borrow_mut().push(self.clone()));
        ScopeGuard(())
    }
}

/// Shorthand: counter `name` on the current registry.
pub fn counter(name: &str) -> Counter {
    current().counter(name)
}

/// Shorthand: gauge `name` on the current registry.
pub fn gauge(name: &str) -> Gauge {
    current().gauge(name)
}

/// Shorthand: histogram `name` on the current registry.
pub fn histogram(name: &str) -> Histogram {
    current().histogram(name)
}

/// Convenient re-exports.
pub mod prelude {
    pub use crate::expose::{parse_prometheus, write_csv, write_json, write_prometheus};
    pub use crate::registry::{Counter, Gauge, Histogram, Registry, Snapshot};
    pub use crate::span::{span, SpanGuard};
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn current_falls_back_to_global() {
        // No install on this thread: the global registry receives it.
        counter("summit_obs_test_global_total").inc();
        assert!(global()
            .snapshot()
            .counter("summit_obs_test_global_total")
            .is_some());
    }

    #[test]
    fn installs_stack_and_unwind() {
        let outer = Registry::new();
        let inner = Registry::new();
        {
            let _a = outer.install();
            counter("summit_obs_test_scoped_total").inc();
            {
                let _b = inner.install();
                counter("summit_obs_test_scoped_total").inc_by(10);
            }
            counter("summit_obs_test_scoped_total").inc();
        }
        assert_eq!(
            outer.snapshot().counter("summit_obs_test_scoped_total"),
            Some(2)
        );
        assert_eq!(
            inner.snapshot().counter("summit_obs_test_scoped_total"),
            Some(10)
        );
    }

    #[test]
    fn install_is_thread_local() {
        let local = Registry::new();
        let _guard = local.install();
        std::thread::scope(|s| {
            s.spawn(|| {
                // The spawned thread has no install: records go global.
                counter("summit_obs_test_other_thread_total").inc();
            });
        });
        assert_eq!(
            local
                .snapshot()
                .counter("summit_obs_test_other_thread_total"),
            None
        );
    }
}
