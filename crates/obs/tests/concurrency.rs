//! Concurrent-traffic soak for the registry: with the workspace thread
//! pool now real, counters and histograms take genuinely parallel
//! writes for the first time. N scoped threads hammer the same metrics
//! through pre-registered handles *and* through the name-lookup path,
//! and the totals must come out exact — no lost updates, no duplicate
//! registration under racing `counter(name)` calls.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_obs::registry::Registry;

const THREADS: usize = 8;
const ITERS: u64 = 2_000;

#[test]
fn concurrent_counter_increments_are_exact() {
    let registry = Registry::new();
    let handle = registry.counter("summit_test_hammer_total");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let handle = handle.clone();
            let registry = registry.clone();
            scope.spawn(move || {
                for i in 0..ITERS {
                    // Alternate the pre-registered handle and the
                    // by-name lookup: both must hit the same cell.
                    if (i + t as u64).is_multiple_of(2) {
                        handle.inc();
                    } else {
                        registry.counter("summit_test_hammer_total").inc();
                    }
                }
            });
        }
    });
    assert_eq!(handle.get(), THREADS as u64 * ITERS);
    assert_eq!(
        registry.snapshot().counter("summit_test_hammer_total"),
        Some(THREADS as u64 * ITERS)
    );
}

#[test]
fn concurrent_histogram_observations_are_exact() {
    let registry = Registry::new();
    let handle = registry.histogram("summit_test_hammer_seconds");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                for i in 0..ITERS {
                    registry
                        .histogram("summit_test_hammer_seconds")
                        .observe((t as f64 + 1.0) * (i as f64 + 1.0) * 1e-6);
                }
            });
        }
    });
    let snap = handle.snapshot();
    assert_eq!(snap.count, THREADS as u64 * ITERS);
    let bucket_total: u64 = snap.buckets.iter().map(|&(_, count)| count).sum();
    assert_eq!(bucket_total, THREADS as u64 * ITERS);
}

#[test]
fn racing_first_registration_yields_one_cell() {
    // All threads race to register the same fresh name; every resulting
    // handle must alias one underlying cell.
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                registry.counter("summit_test_race_total").inc();
            });
        }
    });
    assert_eq!(
        registry.snapshot().counter("summit_test_race_total"),
        Some(THREADS as u64)
    );
}
