//! Offline stand-in for the `bytes` crate.
//!
//! Implements [`BytesMut`] (growable write buffer), [`Bytes`]
//! (cheaply-cloneable read cursor over shared immutable data) and the
//! [`Buf`]/[`BufMut`] trait subset used by the telemetry codec:
//! `put_u8`, `get_u8`, `has_remaining`, `freeze`, `from_static`, `len`.

use std::sync::Arc;

/// Read-only byte buffer with a consuming cursor.
///
/// Cloning is O(1): the underlying storage is shared via [`Arc`].
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self {
            data: data.into(),
            pos: 0,
        }
    }

    /// Unconsumed length (mirrors `bytes::Bytes::len`).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: v.into(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.buf.extend_from_slice(other);
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read access with an internal cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// `true` while unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes and returns the next byte.
    ///
    /// # Panics
    /// If no bytes remain.
    fn get_u8(&mut self) -> u8;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.pos < self.data.len(), "get_u8 past end of buffer");
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }
}

/// Write access (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        m.put_u8(2);
        m.extend_from_slice(&[3, 4]);
        assert_eq!(m.len(), 4);
        let mut b = m.freeze();
        assert_eq!(b.len(), 4);
        assert!(b.has_remaining());
        assert_eq!(
            (b.get_u8(), b.get_u8(), b.get_u8(), b.get_u8()),
            (1, 2, 3, 4)
        );
        assert!(!b.has_remaining());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn clone_shares_data_but_not_cursor() {
        let mut a: Bytes = vec![9, 8, 7].into();
        let b = a.clone();
        a.get_u8();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn from_static_and_eq() {
        let a = Bytes::from_static(&[1, 2, 3]);
        let b: Bytes = vec![1, 2, 3].into();
        assert_eq!(a, b);
    }
}
