//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `rand` 0.8:
//! [`Rng`], [`SeedableRng`], and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic across platforms
//! and runs, which is exactly the property the reproduction's seed
//! tests rely on. Streams do **not** match upstream `rand`'s ChaCha12
//! `StdRng`; golden values in tests are derived from this generator.

/// Deterministic pseudo-random generators.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = crate::std_rng::SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// domain, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) range.
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element types usable with [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                // Modulo draw; bias is < 2^-64 * span, negligible for the
                // simulation ranges used here.
                let off = (rng.next_u64() as i128) % span;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "cannot sample from empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
            let x = rng.gen_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
