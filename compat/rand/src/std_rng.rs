//! xoshiro256++ generator behind [`StdRng`](crate::rngs::StdRng).

use crate::{RngCore, SeedableRng};

/// SplitMix64 stream, used to expand seeds (and usable standalone).
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// The workspace's standard deterministic generator (xoshiro256++).
///
/// Not cryptographically secure; chosen for speed, equidistribution and
/// cross-platform reproducibility of simulation streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // An all-zero state is a fixed point for xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9e3779b97f4a7c15,
                0xbf58476d1ce4e5b9,
                0x94d049bb133111eb,
                1,
            ];
        }
        Self { s }
    }
}
