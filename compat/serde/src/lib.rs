//! Offline stand-in for the `serde` crate.
//!
//! Exposes `Serialize`/`Deserialize` as (a) empty marker traits and
//! (b) no-op derive macros, so `use serde::{Deserialize, Serialize};`
//! plus `#[derive(Serialize, Deserialize)]` compile exactly as with the
//! real crate. Nothing in this workspace performs actual serialization
//! (no format crate is in the tree), so no trait methods are needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
