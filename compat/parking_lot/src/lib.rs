//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps [`std::sync::Mutex`]/[`std::sync::RwLock`] behind parking_lot's
//! non-poisoning API (`lock()`/`read()`/`write()` return guards
//! directly). Poisoned std locks are recovered transparently, matching
//! parking_lot's "no poisoning" behavior.

use std::sync;

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value in a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value in a new rwlock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
