//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{bounded, Sender, Receiver}` backed by
//! [`std::sync::mpsc::sync_channel`]. The semantics the telemetry fan-in
//! relies on hold: bounded capacity with blocking sends, cloneable
//! senders, receiver iteration that ends when all senders disconnect.

/// Multi-producer channels (std-backed).
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]: the channel is at
    /// capacity, or the receiving side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full; the value is handed back.
        Full(T),
        /// The receiver is gone; the value is handed back.
        Disconnected(T),
    }

    /// Cloneable producer handle of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        tx: mpsc::SyncSender<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                tx: self.tx.clone(),
                depth: Arc::clone(&self.depth),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; errors if the receiving side has hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Count the slot before the (possibly blocking) send so a
            // full channel reads as `capacity` depth while we wait.
            self.depth.fetch_add(1, Ordering::Relaxed);
            self.tx.send(value).map_err(|mpsc::SendError(v)| {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                SendError(v)
            })
        }

        /// Non-blocking send; `Full` hands the value back without
        /// waiting, letting callers count backpressure stalls before
        /// falling back to a blocking [`Sender::send`].
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            // Count the slot before handing the value over: once the
            // inner send succeeds the receiver may drain it (and
            // decrement) immediately, so incrementing afterwards would
            // let the gauge transiently underflow.
            self.depth.fetch_add(1, Ordering::Relaxed);
            match self.tx.try_send(value) {
                Ok(()) => Ok(()),
                Err(mpsc::TrySendError::Full(v)) => {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    Err(TrySendError::Full(v))
                }
                Err(mpsc::TrySendError::Disconnected(v)) => {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    Err(TrySendError::Disconnected(v))
                }
            }
        }

        /// Best-effort number of values currently buffered in the
        /// channel (including sends still blocked on capacity).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// True when no values are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Consumer handle of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Receiver<T> {
        /// Blocking receive; `None`-like error once all senders are gone.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            let v = self.rx.recv()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(v)
        }

        /// Best-effort number of values currently buffered.
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// True when no values are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator draining a receiver until all senders disconnect,
    /// keeping the shared depth gauge in sync on every item.
    #[derive(Debug)]
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            IntoIter { rx: self }
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                tx,
                depth: Arc::clone(&depth),
            },
            Receiver { rx, depth },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_multiple_producers() {
            let (tx, rx) = bounded::<u32>(4);
            let mut handles = Vec::new();
            for p in 0..3u32 {
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..10 {
                        tx.send(p * 100 + i).expect("receiver alive");
                    }
                }));
            }
            drop(tx);
            let got: Vec<u32> = rx.into_iter().collect();
            for h in handles {
                h.join().expect("producer panicked");
            }
            assert_eq!(got.len(), 30);
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn try_send_reports_full_and_depth_tracks_occupancy() {
            let (tx, rx) = bounded::<u8>(2);
            assert!(tx.is_empty());
            tx.try_send(1).expect("slot free");
            tx.try_send(2).expect("slot free");
            assert_eq!(tx.len(), 2);
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.recv().expect("value buffered"), 1);
            assert_eq!(rx.len(), 1);
            tx.try_send(3).expect("slot freed by recv");
            drop(tx);
            let rest: Vec<u8> = rx.into_iter().collect();
            assert_eq!(rest, vec![2, 3]);
        }

        #[test]
        fn try_send_reports_disconnected() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
        }
    }
}
