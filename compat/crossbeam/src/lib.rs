//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{bounded, Sender, Receiver}` backed by
//! [`std::sync::mpsc::sync_channel`]. The semantics the telemetry fan-in
//! relies on hold: bounded capacity with blocking sends, cloneable
//! senders, receiver iteration that ends when all senders disconnect.

/// Multi-producer channels (std-backed).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Cloneable producer handle of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        tx: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; errors if the receiving side has hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.tx
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Consumer handle of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocking receive; `None`-like error once all senders are gone.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.rx.recv()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.rx.into_iter()
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender { tx }, Receiver { rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_multiple_producers() {
            let (tx, rx) = bounded::<u32>(4);
            let mut handles = Vec::new();
            for p in 0..3u32 {
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..10 {
                        tx.send(p * 100 + i).expect("receiver alive");
                    }
                }));
            }
            drop(tx);
            let got: Vec<u32> = rx.into_iter().collect();
            for h in handles {
                h.join().expect("producer panicked");
            }
            assert_eq!(got.len(), 30);
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
