//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of criterion's API surface for this
//! workspace's benches to compile and produce useful wall-clock
//! numbers: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `sample_size`/`throughput`, [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros. There is no
//! statistical analysis — each benchmark reports min/mean over a small
//! fixed number of timed samples.

use std::time::Instant;

/// Opaque-value hint to defeat constant folding (std implementation).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Per-benchmark measurement driver passed to the closure.
pub struct Bencher {
    samples: usize,
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then timed samples.
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.results_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

fn report(name: &str, results_ns: &[f64], throughput: Option<Throughput>) {
    if results_ns.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = results_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = results_ns.iter().sum::<f64>() / results_ns.len() as f64;
    let human = |ns: f64| {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    };
    let mut line = format!(
        "{name:<40} min {:>12}  mean {:>12}  ({} samples)",
        human(min),
        human(mean),
        results_ns.len()
    );
    if let Some(tp) = throughput {
        let per_s = |count: u64| count as f64 / (min / 1e9);
        match tp {
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.1} MiB/s", per_s(n) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.0} elem/s", per_s(n)));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            results_ns: Vec::new(),
        };
        f(&mut b);
        report(name, &b.results_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            results_ns: Vec::new(),
        };
        f(&mut b);
        report(name, &b.results_ns, self.throughput);
        self
    }

    /// Ends the group (printing nothing; present for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // 1 warm-up + sample_size timed calls.
        assert_eq!(calls, 11);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        g.bench_function("counted", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert_eq!(calls, 4);
    }
}
