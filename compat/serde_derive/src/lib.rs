//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `#[derive(Serialize, Deserialize)]` attributes mark
//! types as wire-format-ready but no code path actually serializes them
//! (there is no `serde_json`/`bincode` in the dependency tree). These
//! derives therefore expand to nothing, which keeps every annotated type
//! compiling without network access to the real serde.

use proc_macro::TokenStream;

/// No-op replacement for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
