//! The chunk executor: scoped worker threads with banded work-stealing.
//!
//! [`run`] is the single entry point every terminal adaptor method goes
//! through. It lays a deterministic chunk grid over the pipeline (the
//! grid depends only on the input length and the call site's
//! `with_min_len` hint), fans the chunk iterators out over
//! [`std::thread::scope`] workers, and returns the per-chunk outputs in
//! ascending chunk order — which is all a caller needs to reassemble
//! the exact sequential result.
//!
//! ## Scheduling
//!
//! Chunk indices are partitioned into one contiguous *band* per worker,
//! each with an atomic cursor. A worker drains its own band first
//! (`fetch_add` on the cursor), then sweeps the other bands and steals
//! whatever indices remain. Scheduling decides only *which thread*
//! computes a chunk, never what the chunk contains, so timing races
//! cannot leak into results.
//!
//! ## Metrics
//!
//! Per execution, into the caller's [`summit_obs::current`] registry:
//! `summit_par_tasks_total` (+= chunk count), `summit_par_threads`
//! (pool size after capping to the task count) and a per-stage
//! `summit_par_busy_<stage>_seconds` histogram of worker busy time,
//! where `<stage>` is the innermost active obs span. The
//! scheduling-dependent `summit_par_steal_total` goes to
//! [`summit_obs::global`] only, keeping scoped snapshots deterministic.

use crate::iter::ParallelIterator;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Upper bound on the number of chunks an execution creates. Small
/// enough that per-chunk overhead (task slots, result vectors) stays
/// negligible, large enough to give stealing room to smooth imbalanced
/// chunks on any realistic core count.
pub(crate) const MAX_CHUNKS: usize = 64;

/// Default floor on elements per chunk when the call site gives no
/// `with_min_len` hint: stops small inputs from shattering into
/// micro-tasks whose claim/lock overhead exceeds their work.
pub(crate) const DEFAULT_MIN_CHUNK: usize = 16;

/// The deterministic chunk size for an input: aim for [`MAX_CHUNKS`]
/// chunks, but never below the call site's `min_chunk` hint (floored
/// at [`DEFAULT_MIN_CHUNK`]). A pure function of `(len, min_chunk)` —
/// thread count plays no part.
pub(crate) fn chunk_size(len: usize, min_chunk: usize) -> usize {
    len.div_ceil(MAX_CHUNKS)
        .max(min_chunk)
        .max(DEFAULT_MIN_CHUNK)
}

/// Executes a pipeline and returns its per-chunk outputs in ascending
/// chunk order.
pub(crate) fn run<I: ParallelIterator>(iter: I) -> Vec<Vec<I::Item>> {
    let len = iter.input_len();
    let cs = chunk_size(len, iter.min_chunk());
    let chunks = iter.into_chunk_iters(cs);
    let tasks = chunks.len();

    let registry = summit_obs::current();
    registry
        .counter("summit_par_tasks_total")
        .inc_by(tasks as u64);
    let threads = crate::current_num_threads().min(tasks.max(1));
    registry.gauge("summit_par_threads").set(threads as f64);

    if threads <= 1 {
        // The exact sequential path: same chunk grid, same order, no
        // worker threads, no stealing.
        return chunks.into_iter().map(Iterator::collect).collect();
    }
    run_parallel(chunks, threads, &registry)
}

/// One worker's contiguous range of chunk indices, with an atomic
/// claim cursor. Cursors may overshoot `end` (a failed claim still
/// bumps them); claimants discard values `>= end`.
struct Band {
    next: AtomicUsize,
    end: usize,
}

/// Claims the next chunk index for worker `home`, scanning bands
/// starting from its own. Returns `(chunk_index, was_steal)`.
fn claim(bands: &[Band], home: usize) -> Option<(usize, bool)> {
    for k in 0..bands.len() {
        let band = &bands[(home + k) % bands.len()];
        let i = band.next.fetch_add(1, Ordering::Relaxed);
        if i < band.end {
            return Some((i, k != 0));
        }
    }
    None
}

/// Partitions chunk indices `0..tasks` into `threads` contiguous bands
/// of near-equal size (the first `tasks % threads` bands get one
/// extra).
fn make_bands(tasks: usize, threads: usize) -> Vec<Band> {
    let base = tasks / threads;
    let rem = tasks % threads;
    let mut bands = Vec::with_capacity(threads);
    let mut start = 0;
    for w in 0..threads {
        let size = base + usize::from(w < rem);
        bands.push(Band {
            next: AtomicUsize::new(start),
            end: start + size,
        });
        start += size;
    }
    bands
}

/// Recovers the inner value of a mutex even if a worker panicked while
/// holding it; the panic itself resurfaces through the scope join.
fn lock_lenient<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The histogram that buckets worker busy time for this execution,
/// named after the innermost active obs span (`summit_` prefix
/// stripped), or `unstaged` outside any span.
fn busy_histogram_name() -> String {
    let spans = summit_obs::active_spans();
    let stage = spans
        .last()
        .map_or("unstaged", |s| s.strip_prefix("summit_").unwrap_or(s));
    format!("summit_par_busy_{stage}_seconds")
}

fn run_parallel<C>(
    chunks: Vec<C>,
    threads: usize,
    registry: &summit_obs::registry::Registry,
) -> Vec<Vec<C::Item>>
where
    C: Iterator + Send,
    C::Item: Send,
{
    let tasks = chunks.len();
    let slots: Vec<Mutex<Option<C>>> = chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let results: Vec<Mutex<Option<Vec<C::Item>>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let bands = make_bands(tasks, threads);
    let steals = AtomicU64::new(0);
    let busy = Mutex::new(Vec::with_capacity(threads));

    std::thread::scope(|scope| {
        for home in 0..threads {
            let slots = &slots;
            let results = &results;
            let bands = &bands;
            let steals = &steals;
            let busy = &busy;
            let registry = registry.clone();
            scope.spawn(move || {
                // Worker threads have a fresh thread-local state: route
                // obs records to the caller's registry and pin any
                // nested par_iter to the sequential path.
                let _obs = registry.install();
                crate::serialize_nested();
                let started = Instant::now();
                let mut stolen = 0u64;
                while let Some((i, was_steal)) = claim(bands, home) {
                    stolen += u64::from(was_steal);
                    let chunk = lock_lenient(&slots[i]).take();
                    if let Some(chunk) = chunk {
                        let out: Vec<C::Item> = chunk.collect();
                        *lock_lenient(&results[i]) = Some(out);
                    }
                }
                steals.fetch_add(stolen, Ordering::Relaxed);
                lock_lenient(busy).push(started.elapsed().as_secs_f64());
            });
        }
    });

    summit_obs::global()
        .counter("summit_par_steal_total")
        .inc_by(steals.load(Ordering::Relaxed));
    let histogram = registry.histogram(&busy_histogram_name());
    for &seconds in lock_lenient(&busy).iter() {
        histogram.observe(seconds);
    }

    results
        .into_iter()
        .map(|slot| lock_lenient(&slot).take().unwrap_or_default())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_is_a_pure_function_of_len_and_min() {
        assert_eq!(chunk_size(0, 1), DEFAULT_MIN_CHUNK);
        assert_eq!(chunk_size(10, 1), DEFAULT_MIN_CHUNK);
        assert_eq!(chunk_size(1000, 1), DEFAULT_MIN_CHUNK); // ceil(1000/64) == the floor
        assert_eq!(chunk_size(10_000, 1), 157); // ceil(10000/64) dominates
        assert_eq!(chunk_size(1000, 256), 256); // call-site hint dominates
        assert_eq!(chunk_size(5, 0), DEFAULT_MIN_CHUNK);
    }

    #[test]
    fn bands_cover_all_tasks_exactly_once() {
        for (tasks, threads) in [(64, 4), (7, 3), (5, 8), (1, 2)] {
            let bands = make_bands(tasks, threads);
            assert_eq!(bands.len(), threads);
            let mut covered = 0;
            for band in &bands {
                let start = band.next.load(Ordering::Relaxed);
                assert!(start <= band.end);
                covered += band.end - start;
            }
            assert_eq!(covered, tasks);
        }
    }

    #[test]
    fn claim_drains_every_index_and_flags_steals() {
        let bands = make_bands(10, 3);
        let mut seen = [false; 10];
        let mut steals = 0;
        // A single claimant with home band 0 drains bands 1 and 2 as
        // steals once its own is empty.
        while let Some((i, was_steal)) = claim(&bands, 0) {
            assert!(!seen[i], "index {i} claimed twice");
            seen[i] = true;
            steals += u64::from(was_steal);
        }
        assert!(seen.iter().all(|&s| s));
        let own = bands[0].end;
        assert_eq!(steals, 10 - own as u64);
    }
}
