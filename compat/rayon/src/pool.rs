//! The chunk executor: a persistent worker pool with banded
//! work-stealing.
//!
//! [`run`] is the single entry point every terminal adaptor method goes
//! through. It lays a deterministic chunk grid over the pipeline (the
//! grid depends only on the input length and the call site's
//! `with_min_len` hint), freezes the pipeline into a shared
//! [`Source`], dispatches one *epoch* to the pool, and returns the
//! per-chunk outputs in ascending chunk order — which is all a caller
//! needs to reassemble the exact sequential result.
//!
//! ## Pool lifecycle
//!
//! Worker threads are spawned **once**, on first parallel use, and then
//! parked on a condvar between executions — dispatching an epoch costs
//! two mutex round-trips and a wakeup instead of N `thread::spawn`s and
//! joins. The pool grows monotonically to the largest thread count any
//! execution requests (each growth batch bumps [`pool_generation`]) and
//! is torn down by process exit; parked workers hold no work and cost
//! nothing but stack space.
//!
//! ## Epochs
//!
//! An epoch is one execution: `(bands, chunk grid, &Source)` published
//! under the pool mutex, plus a claim-slot budget of `threads - 1`.
//! Woken workers claim a slot (their *home* band), drain chunks through
//! the atomic band cursors, and send one report back through a
//! per-epoch channel; the dispatching thread participates as home 0 and
//! then waits at the completion barrier until every claimed slot
//! retires. A `door` mutex serializes concurrent dispatchers, so the
//! published epoch is unambiguous.
//!
//! ## Scheduling
//!
//! Chunk indices are partitioned into one contiguous *band* per
//! participant, each with an atomic cursor. A participant drains its
//! own band first (`fetch_add` on the cursor), then sweeps the other
//! bands and steals whatever indices remain. Cursors may overshoot
//! their band's end (a failed claim still bumps them), so accounting
//! reads clamp with [`Band::remaining`]. Scheduling decides only
//! *which thread* computes a chunk, never what the chunk contains, so
//! timing races cannot leak into results.
//!
//! ## Results and panics
//!
//! Each participant accumulates `(chunk_index, Vec<Item>)` pairs
//! privately and sends them once over the epoch's mpsc channel — no
//! shared slot vectors, no per-chunk locks. The dispatcher merges the
//! pairs index-ordered after the barrier. A panicking chunk stops its
//! participant, the panic payload (smallest chunk index wins) is
//! re-raised on the dispatching thread after the barrier, and the pool
//! survives for the next execution.
//!
//! ## The one `unsafe` erasure point
//!
//! Persistent ('static) workers cannot hold a borrow of a caller's
//! stack-allocated source in safe Rust, so the published epoch handle
//! erases `&EpochJob<'_, S>` to a raw pointer plus a monomorphized
//! trampoline (`ErasedJob`). Soundness rests on two invariants, both
//! enforced here: the dispatcher keeps the job alive until the
//! completion barrier passes (even on unwind — the barrier runs in a
//! drop guard), and `EpochJob` is compile-time-checked `Sync` before
//! its address is published ([`assert_sync`]). This is the entire
//! unsafe surface of the crate.
//!
//! ## Metrics
//!
//! Per execution, into the caller's [`summit_obs::current`] registry:
//! `summit_par_tasks_total` (+= chunk count), `summit_par_threads`
//! (participants after capping — written once, only by parallel
//! executions, so sequential and nested runs never overwrite it
//! mid-run) and a per-stage `summit_par_busy_<stage>_seconds`
//! histogram of participant busy time, where `<stage>` is the
//! innermost active obs span (name cached per thread — no per-call
//! allocation). The scheduling-dependent `summit_par_steal_total` goes
//! to [`summit_obs::global`] only, keeping scoped snapshots
//! deterministic.

use crate::iter::{ParallelIterator, Source};
use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;
use summit_obs::trace::{TraceClock, TraceCollector};

/// Upper bound on the number of chunks an execution creates. Small
/// enough that per-chunk overhead stays negligible, large enough to
/// give stealing room to smooth imbalanced chunks on any realistic
/// core count.
pub(crate) const MAX_CHUNKS: usize = 64;

/// Default floor on elements per chunk when the call site gives no
/// `with_min_len` hint: stops small inputs from shattering into
/// micro-tasks whose claim overhead exceeds their work.
pub(crate) const DEFAULT_MIN_CHUNK: usize = 16;

/// The deterministic chunk size for an input: aim for [`MAX_CHUNKS`]
/// chunks, but never below the call site's `min_chunk` hint (floored
/// at [`DEFAULT_MIN_CHUNK`]). A pure function of `(len, min_chunk)` —
/// thread count plays no part.
pub(crate) fn chunk_size(len: usize, min_chunk: usize) -> usize {
    len.div_ceil(MAX_CHUNKS)
        .max(min_chunk)
        .max(DEFAULT_MIN_CHUNK)
}

/// Input index range of chunk `k` on the `(chunk_size, len)` grid.
pub(crate) fn chunk_range(k: usize, chunk_size: usize, len: usize) -> Range<usize> {
    let start = k.saturating_mul(chunk_size).min(len);
    start..start.saturating_add(chunk_size).min(len)
}

thread_local! {
    /// True while this thread is executing chunks of an epoch (as
    /// dispatcher or worker). Any `run` on such a thread must take the
    /// sequential path: nested parallelism may not multiply the thread
    /// count, and re-entering the pool from inside an epoch would
    /// self-deadlock on the dispatch door.
    static IN_EPOCH: Cell<bool> = const { Cell::new(false) };
}

/// Executes a pipeline and returns its per-chunk outputs in ascending
/// chunk order.
pub(crate) fn run<I: ParallelIterator>(iter: I) -> Vec<Vec<I::Item>> {
    let len = iter.input_len();
    let cs = chunk_size(len, iter.min_chunk());
    let tasks = if len == 0 { 0 } else { len.div_ceil(cs) };

    let registry = summit_obs::current();
    registry
        .counter("summit_par_tasks_total")
        .inc_by(tasks as u64);
    // An input under the pipeline's `seq_below` floor dispatches
    // inline: the pool wakeup would cost more than the whole kernel.
    // The grid above is already fixed, so the inline replay is
    // bit-identical to what the pool would have produced.
    let threads = if IN_EPOCH.with(Cell::get) || len < iter.seq_floor() {
        1
    } else {
        crate::current_num_threads().min(tasks.max(1))
    };
    let source = iter.into_source(cs);
    if threads <= 1 {
        return run_sequential(&source, cs, len, tasks);
    }
    run_parallel(&source, cs, len, tasks, threads, &registry)
}

/// The exact sequential path: same chunk grid, same order, no worker
/// threads, no stealing — and no `summit_par_threads` gauge write.
fn run_sequential<S: Source>(
    source: &S,
    chunk_size: usize,
    len: usize,
    tasks: usize,
) -> Vec<Vec<S::Item>> {
    (0..tasks)
        .map(|k| source.chunk_iter(chunk_range(k, chunk_size, len)).collect())
        .collect()
}

/// One participant's contiguous range of chunk indices, with an atomic
/// claim cursor. Cursors may overshoot `end` (a failed claim still
/// bumps them); claimants discard values `>= end` and accounting reads
/// go through the clamped [`Band::remaining`].
struct Band {
    next: AtomicUsize,
    end: usize,
}

impl Band {
    /// Chunks not yet claimed from this band, clamping the cursor
    /// overshoot that failed claims leave behind.
    fn remaining(&self) -> usize {
        self.end - self.next.load(Ordering::Relaxed).min(self.end)
    }
}

/// Claims the next chunk index for participant `home`, scanning bands
/// starting from its own. Returns `(chunk_index, was_steal)`.
fn claim(bands: &[Band], home: usize) -> Option<(usize, bool)> {
    for k in 0..bands.len() {
        let band = &bands[(home + k) % bands.len()];
        let i = band.next.fetch_add(1, Ordering::Relaxed);
        if i < band.end {
            return Some((i, k != 0));
        }
    }
    None
}

/// Partitions chunk indices `0..tasks` into `threads` contiguous bands
/// of near-equal size (the first `tasks % threads` bands get one
/// extra).
fn make_bands(tasks: usize, threads: usize) -> Vec<Band> {
    let base = tasks / threads;
    let rem = tasks % threads;
    let mut bands = Vec::with_capacity(threads);
    let mut start = 0;
    for w in 0..threads {
        let size = base + usize::from(w < rem);
        bands.push(Band {
            next: AtomicUsize::new(start),
            end: start + size,
        });
        start += size;
    }
    bands
}

/// Recovers the inner value of a mutex even if a thread panicked while
/// holding it; the panic itself resurfaces through the epoch barrier.
fn lock_lenient<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// Per-thread cache of the busy-time histogram name, keyed by the
    /// innermost span: repeated executions inside one stage (the common
    /// case — a hot loop calling `par_iter`) reuse the formatted name
    /// instead of allocating a fresh `String` per execution.
    static BUSY_NAME: RefCell<(String, String)> =
        const { RefCell::new((String::new(), String::new())) };
}

/// Calls `f` with the name of the histogram that buckets participant
/// busy time for this execution: `summit_par_busy_<stage>_seconds`,
/// where `<stage>` is the innermost active obs span (`summit_` prefix
/// stripped), or `unstaged` outside any span.
fn with_busy_metric_name<R>(f: impl FnOnce(&str) -> R) -> R {
    summit_obs::with_innermost_span(|innermost| {
        let stage = innermost.map_or("unstaged", |s| s.strip_prefix("summit_").unwrap_or(s));
        BUSY_NAME.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.0 != stage {
                cache.0.clear();
                cache.0.push_str(stage);
                cache.1 = format!("summit_par_busy_{stage}_seconds");
            }
            f(&cache.1)
        })
    })
}

/// Trace context for one epoch, captured at dispatch time: the
/// caller's installed collector, the epoch id it allocated, and the
/// event names pre-composed from the dispatching stage ("par_epoch
/// <stage>" / "par_chunk <stage>") so workers never format on the hot
/// path.
struct TraceHandles {
    tc: TraceCollector,
    epoch: u64,
    epoch_name: String,
    chunk_name: String,
}

/// What one participant sends back when it retires from an epoch.
struct WorkerReport<T> {
    home: usize,
    busy_s: f64,
    steals: u64,
    pairs: Vec<(usize, Vec<T>)>,
}

/// One execution's shared state: everything a participant needs to
/// drain chunks, plus the report channel and the panic slot. Workers
/// access it strictly between epoch publication and the completion
/// barrier, through `&EpochJob` (hence the [`assert_sync`] check
/// before its address is erased).
struct EpochJob<'a, S: Source> {
    source: &'a S,
    chunk_size: usize,
    len: usize,
    bands: Vec<Band>,
    registry: summit_obs::registry::Registry,
    reports: Sender<WorkerReport<S::Item>>,
    /// The dispatching thread's innermost obs span at dispatch time;
    /// workers push it as a stage label so spans (and nested busy-time
    /// attribution) opened inside chunks see the dispatching stage as
    /// their parent rather than an orphan root.
    stage: Option<String>,
    /// Trace context when the dispatcher had a collector installed.
    trace: Option<TraceHandles>,
    /// First panic payload (smallest chunk index wins, so the surfaced
    /// panic does not depend on worker timing when one site panics).
    panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>>,
}

/// Compile-time proof that a value is safe to share across threads by
/// reference — the check the raw-pointer erasure would otherwise skip.
fn assert_sync<T: Sync>(_: &T) {}

/// A type-erased `&EpochJob<'_, S>`: raw pointer plus the monomorphized
/// trampoline that knows `S`.
#[derive(Clone, Copy)]
struct ErasedJob {
    data: *const (),
    run: unsafe fn(*const (), usize),
}

// SAFETY: `data` is only ever dereferenced through `run` (the matching
// trampoline) while the dispatching thread blocks at the epoch
// barrier, and the pointee is checked `Sync` by `assert_sync` before
// erasure — sharing it across threads is exactly what `Sync` permits.
// The function pointer is plain data.
unsafe impl Send for ErasedJob {}

/// Re-materializes the erased job reference and runs one participant.
///
/// # Safety
///
/// `data` must be the address of a live `EpochJob<'_, S>` published for
/// the current epoch; [`Pool::dispatch`] guarantees liveness until the
/// completion barrier that this participant's retirement feeds.
unsafe fn epoch_trampoline<S: Source>(data: *const (), home: usize) {
    // SAFETY: see above — the dispatcher keeps the pointee alive and
    // Sync-checked until every claimed participant retires.
    let job = unsafe { &*data.cast::<EpochJob<'_, S>>() };
    epoch_worker(job, home);
}

/// Drains chunks for one participant (`home` band), then sends its
/// report. Runs on the dispatching thread for home 0 and on pool
/// workers otherwise.
fn epoch_worker<S: Source>(job: &EpochJob<'_, S>, home: usize) {
    // Workers have a fresh thread-local registry stack: route obs
    // records from user closures to the caller's registry. The
    // dispatcher (home 0) already has it current — and already carries
    // the stage label and any installed trace collector.
    let _obs = (home != 0).then(|| job.registry.install());
    let _stage = (home != 0)
        .then(|| job.stage.as_deref().map(summit_obs::span::stage_scope))
        .flatten();
    let _trace = (home != 0)
        .then(|| job.trace.as_ref().and_then(|t| t.tc.install_worker()))
        .flatten();
    // Live pool events are wall-clock-only: under the virtual clock the
    // interleaving of claims is scheduling-dependent, so the dispatcher
    // synthesizes the canonical epoch post-barrier instead.
    let wall = job
        .trace
        .as_ref()
        .filter(|t| t.tc.clock() == TraceClock::Wall);
    if let Some(t) = wall {
        t.tc.instant("unpark", t.epoch);
    }
    let started = Instant::now();
    let mut steals = 0u64;
    let mut pairs = Vec::new();
    while let Some((k, was_steal)) = claim(&job.bands, home) {
        steals += u64::from(was_steal);
        if was_steal {
            if let Some(t) = wall {
                t.tc.instant("steal", t.epoch);
            }
        }
        let chunk_t0 = wall.map(|t| t.tc.now());
        let range = chunk_range(k, job.chunk_size, job.len);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.source.chunk_iter(range).collect::<Vec<_>>()
        })) {
            Ok(items) => {
                if let (Some(t), Some(t0)) = (wall, chunk_t0) {
                    t.tc.complete(&t.chunk_name, t0, t.epoch, k as i64);
                }
                pairs.push((k, items));
            }
            Err(payload) => {
                let mut slot = lock_lenient(&job.panic);
                match slot.as_ref() {
                    Some(&(first, _)) if first <= k => {}
                    _ => *slot = Some((k, payload)),
                }
                break;
            }
        }
    }
    if let Some(t) = wall {
        t.tc.instant("park", t.epoch);
    }
    let _ = job.reports.send(WorkerReport {
        home,
        busy_s: started.elapsed().as_secs_f64(),
        steals,
        pairs,
    });
}

/// Shared state of the persistent pool, guarded by [`Pool::state`].
#[derive(Default)]
struct PoolState {
    /// Monotonic epoch id; workers use it to join each epoch at most
    /// once.
    epoch: u64,
    /// The published epoch handle; `None` between epochs.
    job: Option<ErasedJob>,
    /// Worker claim slots still open in the current epoch.
    slots_left: usize,
    /// Home band the next claiming worker takes (the dispatcher is
    /// always home 0).
    next_slot: usize,
    /// Workers currently inside the current epoch.
    active: usize,
    /// Worker threads alive (spawned once, parked between epochs).
    workers: usize,
    /// Bumped once per batch of worker spawns — lets tests assert that
    /// back-to-back executions reused the same threads.
    generation: u64,
}

/// The process-wide persistent worker pool.
struct Pool {
    state: Mutex<PoolState>,
    /// Wakes parked workers when an epoch is published.
    work_cv: Condvar,
    /// Wakes the dispatcher when the last active participant retires.
    done_cv: Condvar,
    /// Serializes dispatchers: one epoch in flight at a time.
    door: Mutex<()>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState::default()),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        door: Mutex::new(()),
    })
}

/// The pool's spawn-batch counter: constant across executions exactly
/// when no new worker threads had to be spawned. `0` until the first
/// parallel execution.
pub fn pool_generation() -> u64 {
    lock_lenient(&pool().state).generation
}

impl Pool {
    /// Grows the pool so `participants - 1` workers exist, spawning
    /// missing ones (one `generation` bump per batch). Returns the
    /// achievable participant count — smaller than requested only if
    /// the OS refuses threads.
    fn ensure_workers(&'static self, participants: usize) -> usize {
        let needed = participants.saturating_sub(1);
        let mut st = lock_lenient(&self.state);
        if st.workers < needed {
            let before = st.workers;
            while st.workers < needed {
                let spawned = std::thread::Builder::new()
                    .name(format!("summit-par-{}", st.workers))
                    .spawn(move || worker_loop(self));
                match spawned {
                    Ok(_) => st.workers += 1,
                    Err(_) => break,
                }
            }
            if st.workers > before {
                st.generation += 1;
            }
        }
        (st.workers + 1).min(participants)
    }

    /// Publishes `job` as the next epoch, participates as home 0, and
    /// blocks until every claimed participant retires. On return (or
    /// unwind) no thread holds a reference into `job`.
    fn dispatch<S: Source>(&self, job: &EpochJob<'_, S>, participants: usize) {
        {
            let mut st = lock_lenient(&self.state);
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(ErasedJob {
                data: std::ptr::from_ref(job).cast(),
                run: epoch_trampoline::<S>,
            });
            st.slots_left = participants.saturating_sub(1);
            st.next_slot = 1;
            st.active = 0;
            self.work_cv.notify_all();
        }
        // Declared before the epoch flag so it drops last: the barrier
        // must hold even if the dispatcher's own participation unwinds,
        // or the erased pointer would dangle under live workers.
        let _barrier = EpochBarrier { pool: self };
        let _nested = EnterEpoch::enter();
        epoch_worker(job, 0);
    }
}

/// Closes the epoch on drop: retracts the job handle (late workers
/// then skip the epoch; their bands are drained by stealing) and waits
/// until every participant that did claim a slot has retired.
struct EpochBarrier<'p> {
    pool: &'p Pool,
}

impl Drop for EpochBarrier<'_> {
    fn drop(&mut self) {
        let mut st = lock_lenient(&self.pool.state);
        st.job = None;
        st.slots_left = 0;
        while st.active > 0 {
            st = self
                .pool
                .done_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Marks the current thread as inside an epoch for its duration (see
/// [`IN_EPOCH`]); restores the previous value on drop.
struct EnterEpoch(bool);

impl EnterEpoch {
    fn enter() -> Self {
        Self(IN_EPOCH.with(|f| f.replace(true)))
    }
}

impl Drop for EnterEpoch {
    fn drop(&mut self) {
        let prev = self.0;
        IN_EPOCH.with(|f| f.set(prev));
    }
}

/// A pool worker's whole life: park on the condvar, join each new
/// epoch at most once (claiming a home band slot), run the epoch's
/// trampoline, retire, repeat. Never returns.
fn worker_loop(pool: &'static Pool) {
    // A worker thread only ever executes inside epochs, so pin it
    // there permanently: anything nested it runs stays sequential.
    IN_EPOCH.with(|f| f.set(true));
    crate::serialize_nested();
    let mut seen = 0u64;
    let mut st = lock_lenient(&pool.state);
    loop {
        if st.epoch != seen {
            seen = st.epoch;
            if st.slots_left > 0 {
                if let Some(job) = st.job {
                    let home = st.next_slot;
                    st.next_slot += 1;
                    st.slots_left -= 1;
                    st.active += 1;
                    drop(st);
                    // SAFETY: the handle was published with this
                    // epoch; the dispatcher blocks at the barrier
                    // until our `active` decrement below, so the
                    // pointee outlives this call.
                    unsafe { (job.run)(job.data, home) };
                    st = lock_lenient(&pool.state);
                    st.active -= 1;
                    if st.active == 0 && st.slots_left == 0 {
                        pool.done_cv.notify_all();
                    }
                    continue;
                }
            }
        }
        st = pool
            .work_cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

fn run_parallel<S: Source>(
    source: &S,
    chunk_size: usize,
    len: usize,
    tasks: usize,
    threads: usize,
    registry: &summit_obs::registry::Registry,
) -> Vec<Vec<S::Item>> {
    let pool = pool();
    let door = lock_lenient(&pool.door);
    let threads = pool.ensure_workers(threads);
    if threads <= 1 {
        drop(door);
        return run_sequential(source, chunk_size, len, tasks);
    }
    // The one gauge write per execution, after all capping; sequential
    // executions never touch it.
    registry.gauge("summit_par_threads").set(threads as f64);

    let stage = summit_obs::with_innermost_span(|s| s.map(String::from));
    let trace = summit_obs::trace::current().map(|tc| {
        let epoch = tc.begin_epoch();
        let label = stage
            .as_deref()
            .map_or("unstaged", |s| s.strip_prefix("summit_").unwrap_or(s));
        TraceHandles {
            tc,
            epoch,
            epoch_name: format!("par_epoch {label}"),
            chunk_name: format!("par_chunk {label}"),
        }
    });

    let (reports_tx, reports_rx) = std::sync::mpsc::channel();
    let job = EpochJob {
        source,
        chunk_size,
        len,
        bands: make_bands(tasks, threads),
        registry: registry.clone(),
        reports: reports_tx,
        stage,
        trace,
        panic: Mutex::new(None),
    };
    assert_sync(&job);
    // Band sizes before any cursor moves: the canonical schedule the
    // virtual-clock synthesis replays post-barrier.
    let band_sizes: Option<Vec<usize>> = job
        .trace
        .as_ref()
        .filter(|t| t.tc.clock() == TraceClock::Virtual)
        .map(|_| job.bands.iter().map(Band::remaining).collect());
    let epoch_t0 = job
        .trace
        .as_ref()
        .filter(|t| t.tc.clock() == TraceClock::Wall)
        .map(|t| t.tc.now());
    {
        // Under the virtual clock, spans opened inside the epoch on the
        // dispatching thread would stamp scheduling-dependent ticks;
        // suppress capture for the dispatch and record the canonical
        // schedule below instead. (The job's own handle bypasses this.)
        let _suppress = job
            .trace
            .as_ref()
            .filter(|t| t.tc.clock() == TraceClock::Virtual)
            .map(|_| summit_obs::trace::suppress());
        pool.dispatch(&job, threads);
    }
    drop(door);

    // Barrier passed: every participant has retired and sent its
    // report; the channel drains without blocking.
    if let Some((_, payload)) = lock_lenient(&job.panic).take() {
        std::panic::resume_unwind(payload);
    }
    if let Some(t) = &job.trace {
        match t.tc.clock() {
            TraceClock::Virtual => {
                if let Some(sizes) = &band_sizes {
                    t.tc.pool_epoch_virtual(&t.epoch_name, &t.chunk_name, t.epoch, sizes);
                }
            }
            TraceClock::Wall => {
                if let Some(t0) = epoch_t0 {
                    t.tc.complete(&t.epoch_name, t0, t.epoch, -1);
                }
            }
        }
    }
    let mut reports: Vec<WorkerReport<S::Item>> = reports_rx.try_iter().collect();
    reports.sort_unstable_by_key(|r| r.home);

    let mut out: Vec<Vec<S::Item>> = (0..tasks).map(|_| Vec::new()).collect();
    let mut steals = 0u64;
    with_busy_metric_name(|name| {
        let histogram = registry.histogram(name);
        for report in reports {
            histogram.observe(report.busy_s);
            steals += report.steals;
            for (k, items) in report.pairs {
                if let Some(slot) = out.get_mut(k) {
                    *slot = items;
                }
            }
        }
    });
    debug_assert!(job.bands.iter().all(|b| b.remaining() == 0));
    summit_obs::global()
        .counter("summit_par_steal_total")
        .inc_by(steals);
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::prelude::*;
    use crate::with_thread_count;

    #[test]
    fn chunk_size_is_a_pure_function_of_len_and_min() {
        assert_eq!(chunk_size(0, 1), DEFAULT_MIN_CHUNK);
        assert_eq!(chunk_size(10, 1), DEFAULT_MIN_CHUNK);
        assert_eq!(chunk_size(1000, 1), DEFAULT_MIN_CHUNK); // ceil(1000/64) == the floor
        assert_eq!(chunk_size(10_000, 1), 157); // ceil(10000/64) dominates
        assert_eq!(chunk_size(1000, 256), 256); // call-site hint dominates
        assert_eq!(chunk_size(5, 0), DEFAULT_MIN_CHUNK);
    }

    #[test]
    fn chunk_range_tiles_the_input_exactly() {
        let (cs, len) = (16usize, 50usize);
        let tasks = len.div_ceil(cs);
        let mut covered = 0;
        for k in 0..tasks {
            let r = chunk_range(k, cs, len);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, len);
        // Past-the-end chunks are empty, not out of bounds.
        assert!(chunk_range(tasks + 1, cs, len).is_empty());
    }

    #[test]
    fn bands_cover_all_tasks_exactly_once() {
        for (tasks, threads) in [(64, 4), (7, 3), (5, 8), (1, 2)] {
            let bands = make_bands(tasks, threads);
            assert_eq!(bands.len(), threads);
            let covered: usize = bands.iter().map(Band::remaining).sum();
            assert_eq!(covered, tasks);
        }
    }

    #[test]
    fn claim_drains_every_index_and_flags_steals() {
        let bands = make_bands(10, 3);
        let mut seen = [false; 10];
        let mut steals = 0;
        // A single claimant with home band 0 drains bands 1 and 2 as
        // steals once its own is empty.
        while let Some((i, was_steal)) = claim(&bands, 0) {
            assert!(!seen[i], "index {i} claimed twice");
            seen[i] = true;
            steals += u64::from(was_steal);
        }
        assert!(seen.iter().all(|&s| s));
        // Every cursor has overshot its band end by now; the clamped
        // accounting read must still report a clean drain.
        assert!(bands.iter().all(|b| b.remaining() == 0));
        let own = bands[0].end;
        assert_eq!(steals, 10 - own as u64);
    }

    #[test]
    fn claim_is_exactly_once_under_a_multithreaded_soak() {
        for round in 0..16 {
            let tasks = 403 + round; // non-divisible remainders too
            let threads = 8;
            let bands = make_bands(tasks, threads);
            let claimed: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            std::thread::scope(|scope| {
                for home in 0..threads {
                    let (bands, claimed) = (&bands, &claimed);
                    scope.spawn(move || {
                        while let Some((i, _)) = claim(bands, home) {
                            claimed[i].fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            for (i, count) in claimed.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::Relaxed),
                    1,
                    "chunk {i} (round {round})"
                );
            }
            assert!(bands.iter().all(|b| b.remaining() == 0));
        }
    }

    /// Grows the pool past any thread count other tests request, so
    /// generation comparisons cannot race with concurrent test threads.
    fn warm_pool() -> u64 {
        let v: Vec<usize> = (0..4096).collect();
        let _: Vec<usize> = with_thread_count(32, || v.par_iter().map(|&x| x).collect());
        pool_generation()
    }

    #[test]
    fn persistent_pool_reuses_workers_across_executions() {
        let generation = warm_pool();
        assert!(generation >= 1);
        let v: Vec<usize> = (0..4096).collect();
        let a: Vec<usize> = with_thread_count(4, || v.par_iter().map(|&x| x * 2).collect());
        let b: Vec<usize> = with_thread_count(4, || v.par_iter().map(|&x| x * 2).collect());
        assert_eq!(a, b);
        // No spawns between the two executions: same worker threads.
        assert_eq!(pool_generation(), generation);
    }

    #[test]
    fn panic_in_a_worker_resurfaces_and_the_pool_survives() {
        let generation = warm_pool();
        let v: Vec<usize> = (0..2048).collect();
        let caught = std::panic::catch_unwind(|| {
            with_thread_count(4, || {
                v.par_iter()
                    .map(|&x| {
                        assert_ne!(x, 1234, "deliberate test panic");
                        x
                    })
                    .collect::<Vec<usize>>()
            })
        });
        assert!(caught.is_err(), "the chunk panic must resurface");
        // The pool survives: the next execution is correct and reuses
        // the same workers.
        let out: Vec<usize> = with_thread_count(4, || v.par_iter().map(|&x| x + 1).collect());
        assert_eq!(out, (1..=2048).collect::<Vec<usize>>());
        assert_eq!(pool_generation(), generation);
    }

    #[test]
    fn workers_inherit_the_dispatching_stage() {
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let _stage = summit_obs::span("summit_test_dispatch_stage");
        let v: Vec<usize> = (0..4096).collect();
        let out: Vec<usize> = with_thread_count(4, || {
            v.par_iter()
                .map(|&x| {
                    // Asserts run on dispatcher and workers alike; a
                    // failure resurfaces through the panic barrier.
                    summit_obs::with_innermost_span(|name| {
                        assert_eq!(name, Some("summit_test_dispatch_stage"));
                    });
                    x
                })
                .collect()
        });
        assert_eq!(out.len(), 4096);
    }

    #[test]
    fn virtual_trace_synthesizes_the_canonical_epoch() {
        use summit_obs::trace::{span_stats, TraceClock, TraceCollector};
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let tc = TraceCollector::new(TraceClock::Virtual);
        let trace_scope = tc.install();
        let stage = summit_obs::span("summit_test_virtual_epoch");
        let v: Vec<usize> = (0..4096).collect();
        let out: Vec<usize> = with_thread_count(2, || v.par_iter().map(|&x| x).collect());
        assert_eq!(out.len(), 4096);
        drop(stage);
        drop(trace_scope);
        let snap = tc.snapshot();
        let labels: Vec<&str> = snap.tracks().iter().map(|(_, l)| l.as_str()).collect();
        assert!(labels.contains(&"summit-par-0"), "worker track present");
        let stats = span_stats(&snap);
        // 4096 elements -> 64 chunks on the deterministic grid, every
        // one synthesized exactly once regardless of real scheduling.
        let chunks = stats
            .stages
            .iter()
            .find(|s| s.name == "par_chunk test_virtual_epoch")
            .expect("chunk stage recorded");
        assert_eq!(chunks.count, 64);
    }

    #[test]
    fn wall_trace_records_live_pool_events() {
        use summit_obs::trace::{write_chrome_json, TraceClock, TraceCollector};
        let tc = TraceCollector::new(TraceClock::Wall);
        let trace_scope = tc.install();
        let v: Vec<usize> = (0..4096).collect();
        let out: Vec<usize> = with_thread_count(2, || v.par_iter().map(|&x| x).collect());
        assert_eq!(out.len(), 4096);
        drop(trace_scope);
        let mut buf = Vec::new();
        write_chrome_json(&mut buf, &tc.snapshot()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // The dispatcher participates as home 0, so these exist even if
        // the workers never woke before the epoch drained.
        assert!(text.contains("\"unpark\""));
        assert!(text.contains("\"park\""));
        assert!(text.contains("par_chunk"));
        assert!(text.contains("par_epoch"));
    }

    #[test]
    fn sequential_executions_leave_the_threads_gauge_alone() {
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let v: Vec<usize> = (0..512).collect();
        let par: Vec<usize> = with_thread_count(3, || v.par_iter().map(|&x| x).collect());
        assert_eq!(par.len(), 512);
        assert_eq!(registry.snapshot().gauge("summit_par_threads"), Some(3.0));
        // A sequential execution (pinned, nested, or one-core) must
        // not overwrite the last parallel pool size.
        let seq: Vec<usize> = with_thread_count(1, || v.par_iter().map(|&x| x).collect());
        assert_eq!(seq.len(), 512);
        assert_eq!(registry.snapshot().gauge("summit_par_threads"), Some(3.0));
    }
}
