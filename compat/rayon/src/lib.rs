//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this crate maps the
//! `par_iter`/`into_par_iter` entry points onto plain sequential
//! iterators. All downstream adaptor chains (`map`, `collect`, …) are
//! ordinary [`Iterator`] methods, so call sites compile unchanged and
//! produce identical (deterministically ordered) results — just without
//! the parallel speedup. Swap in real rayon by deleting the vendored
//! crate from `[workspace.dependencies]` once a registry is available.

/// Parallel-iterator entry-point traits (sequential fallbacks).
pub mod prelude {
    /// By-reference parallel iteration (`.par_iter()`).
    pub trait IntoParallelRefIterator<'data> {
        /// Iterator yielded by [`par_iter`](Self::par_iter).
        type Iter: Iterator;

        /// Sequential stand-in for rayon's `par_iter`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// By-value parallel iteration (`.into_par_iter()`).
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Iterator yielded by [`into_par_iter`](Self::into_par_iter).
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential stand-in for rayon's `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// Rayon-only adaptors mapped onto their sequential equivalents,
    /// blanket-implemented so they are available on every iterator a
    /// `par_iter()` call produces.
    pub trait ParallelIterator: Iterator + Sized {
        /// Sequential stand-in for rayon's `flat_map_iter`.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        /// Sequential no-op stand-in for rayon's `with_min_len`.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_on_vec_and_slice() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let s: &[i32] = &v;
        assert_eq!(s.par_iter().count(), 3);
    }

    #[test]
    fn into_par_iter_on_vec_and_range() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 6);
        let idx: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }
}
