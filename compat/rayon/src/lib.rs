//! Offline stand-in for the `rayon` crate, backed by a persistent
//! thread pool.
//!
//! The build environment has no network access, so this crate
//! implements the `par_iter`/`into_par_iter` subset the workspace uses
//! on its own worker pool: threads are spawned once (named
//! `summit-par-N`), park on a condvar between executions, and each
//! execution is dispatched to them as an *epoch*. Jobs borrow the
//! caller's stack while workers are `'static`, so dispatch erases the
//! job through one audited `unsafe` point (see `pool.rs`) made sound
//! by a compile-time `Sync` check and an unwind-safe completion
//! barrier. Unlike real rayon, execution is **deterministic by
//! construction**:
//!
//! - Every pipeline decomposes its input into contiguous chunks whose
//!   boundaries depend only on the input length and the call site's
//!   [`with_min_len`](prelude::ParallelIterator::with_min_len) hint —
//!   never on the thread count or on runtime scheduling.
//! - `collect()` concatenates chunk outputs in chunk order, so
//!   `par_iter().map(f).collect()` is bit-identical to the sequential
//!   `iter().map(f).collect()`.
//! - `fold()`/`reduce()` combine per-chunk accumulators in ascending
//!   chunk order, so even non-associative floating-point reductions give
//!   the same bits for every `SUMMIT_THREADS` value (the *grouping* is
//!   fixed by the chunk layout, which the thread count cannot change).
//!
//! Workers claim chunk indices from per-worker contiguous bands through
//! atomic cursors and steal from other bands once their own is drained,
//! so an imbalanced chunk does not idle the rest of the pool.
//!
//! ## Pool sizing
//!
//! The pool size is resolved per execution:
//!
//! 1. a thread-local override installed by [`with_thread_count`]
//!    (used by tests and the bench driver);
//! 2. the `SUMMIT_THREADS` environment variable (a positive integer;
//!    `1` forces the exact sequential path — no epoch at all), parsed
//!    once per process and cached;
//! 3. [`std::thread::available_parallelism`] otherwise.
//!
//! Growing the pool spawns only the missing workers and bumps the
//! counter behind [`pool_generation`], which tests read to prove a
//! warm pool is reused rather than respawned.
//!
//! ## Observability
//!
//! Executions record into `summit-obs`: the deterministic
//! `summit_par_tasks_total` chunk counter and `summit_par_threads`
//! gauge go to the current (possibly scoped) registry along with a
//! per-stage `summit_par_busy_<stage>_seconds` worker busy-time
//! histogram; the scheduling-dependent `summit_par_steal_total`
//! counter goes to the process-wide global registry only, so per-run
//! scoped snapshots stay bit-reproducible.

pub mod iter;
pub(crate) mod pool;

pub use pool::pool_generation;

use std::cell::Cell;
use std::sync::OnceLock;

/// Parallel-iterator entry points, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, ParallelIterator, StableSum,
    };
}

thread_local! {
    /// Per-thread pool-size override; `None` defers to the environment.
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads the next execution on this thread will
/// use (before capping to the task count): the [`with_thread_count`]
/// override if one is active, else `SUMMIT_THREADS`, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    // The environment cannot change mid-process, so the lookup and
    // parse happen once instead of on every parallel execution.
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    ENV_THREADS
        .get_or_init(|| parse_env_threads(std::env::var("SUMMIT_THREADS").ok().as_deref()))
        .unwrap_or_else(default_threads)
}

/// Parses a `SUMMIT_THREADS` value; anything but a positive integer
/// defers to the machine default.
fn parse_env_threads(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` with the pool size pinned to `threads` on this thread
/// (restored afterwards, panic-safe). `1` forces the exact sequential
/// path. This is how the determinism tests and the `--bench` driver
/// compare thread counts without mutating the process environment.
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1)))));
    f()
}

/// Pins nested executions on the current (worker) thread to the
/// sequential path: a `par_iter` inside a `par_iter` must not multiply
/// the thread count.
pub(crate) fn serialize_nested() {
    THREAD_OVERRIDE.with(|c| c.set(Some(1)));
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_on_vec_and_slice() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let s: &[i32] = &v;
        let copied: Vec<i32> = s.par_iter().map(|&x| x).collect();
        assert_eq!(copied, vec![1, 2, 3]);
    }

    #[test]
    fn into_par_iter_on_vec_and_range() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 6);
        let idx: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn with_thread_count_restores_on_exit_and_panic() {
        with_thread_count(3, || {
            assert_eq!(current_num_threads(), 3);
            with_thread_count(2, || assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
        let caught = std::panic::catch_unwind(|| with_thread_count(5, || panic!("boom")));
        assert!(caught.is_err());
        // The override must not leak out of the panicked scope.
        assert!(THREAD_OVERRIDE.with(Cell::get).is_none());
    }

    #[test]
    fn env_thread_parsing_accepts_positive_integers_only() {
        assert_eq!(parse_env_threads(Some("4")), Some(4));
        assert_eq!(parse_env_threads(Some(" 12 ")), Some(12));
        assert_eq!(parse_env_threads(Some("0")), None);
        assert_eq!(parse_env_threads(Some("-3")), None);
        assert_eq!(parse_env_threads(Some("lots")), None);
        assert_eq!(parse_env_threads(Some("")), None);
        assert_eq!(parse_env_threads(None), None);
    }

    #[test]
    fn thread_override_wins_over_the_cached_env_value() {
        // Prime the process-wide cache first, then check the override
        // still takes precedence and restores cleanly.
        let ambient = current_num_threads();
        assert!(ambient >= 1);
        with_thread_count(ambient + 3, || {
            assert_eq!(current_num_threads(), ambient + 3);
        });
        assert_eq!(current_num_threads(), ambient);
    }

    #[test]
    fn collect_is_bit_identical_across_thread_counts() {
        let data: Vec<f64> = (0..1789).map(|i| (i as f64).sin() * 1e3).collect();
        let run = |threads: usize| -> Vec<u64> {
            with_thread_count(threads, || {
                data.par_iter()
                    .map(|&x| (x.sqrt().abs() + x * x).to_bits())
                    .collect()
            })
        };
        let sequential = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn enumerate_yields_global_indices() {
        let v: Vec<u32> = (0..517).collect();
        let pairs: Vec<(usize, u32)> = with_thread_count(4, || {
            v.clone()
                .into_par_iter()
                .enumerate()
                .map(|(i, x)| (i, x))
                .collect()
        });
        for (i, (idx, x)) in pairs.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*x as usize, i);
        }
    }

    #[test]
    fn flat_map_iter_preserves_input_order() {
        let rows: Vec<usize> = (0..97).collect();
        let run = |threads: usize| -> Vec<(usize, usize)> {
            with_thread_count(threads, || {
                rows.par_iter()
                    .flat_map_iter(|&r| (0..3).map(move |c| (r, c)))
                    .collect()
            })
        };
        let sequential = run(1);
        assert_eq!(sequential.len(), 97 * 3);
        assert_eq!(run(4), sequential);
    }

    #[test]
    fn fold_reduce_fixes_float_grouping() {
        // Summing floats is not associative; the chunk layout (not the
        // thread count) decides the grouping, so every pool size gives
        // the same bits.
        let data: Vec<f64> = (0..4096).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let run = |threads: usize| -> u64 {
            with_thread_count(threads, || {
                data.par_iter()
                    .fold(|| 0.0f64, |acc, &x| acc + x)
                    .reduce(|| 0.0f64, |a, b| a + b)
                    .to_bits()
            })
        };
        let sequential = run(1);
        for threads in [2, 5, 16] {
            assert_eq!(run(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn reduce_of_empty_input_is_identity() {
        let empty: Vec<f64> = Vec::new();
        let total = with_thread_count(4, || empty.par_iter().map(|&x| x).reduce(|| -7.5, f64::max));
        assert_eq!(total, -7.5);
        let collected: Vec<f64> = with_thread_count(4, || empty.par_iter().map(|&x| x).collect());
        assert!(collected.is_empty());
    }

    #[test]
    fn with_min_len_coarsens_the_chunk_grid() {
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let n = 1000usize;
        let v: Vec<usize> = (0..n).collect();
        let _: Vec<usize> = v.par_iter().map(|&x| x).with_min_len(n).collect();
        assert_eq!(
            registry.snapshot().counter("summit_par_tasks_total"),
            Some(1),
            "min_len = input length must produce a single chunk"
        );
        let _: Vec<usize> = v.par_iter().map(|&x| x).collect();
        let expected = 1 + (n as u64).div_ceil(crate::pool::chunk_size(n, 1) as u64);
        assert_eq!(
            registry.snapshot().counter("summit_par_tasks_total"),
            Some(expected)
        );
    }

    #[test]
    fn seq_below_skips_the_pool_for_small_inputs() {
        // The gauge is written only by parallel (pool) executions, so
        // it doubles as a dispatch probe: under the floor it must stay
        // unset, at or above the floor the pool runs.
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let small: Vec<usize> = (0..40).collect();
        let out: Vec<usize> = with_thread_count(4, || {
            small.par_iter().map(|&x| x * 3).seq_below(64).collect()
        });
        assert_eq!(out, (0..40).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(registry.snapshot().gauge("summit_par_threads"), None);

        let big: Vec<usize> = (0..64).collect();
        let out: Vec<usize> =
            with_thread_count(4, || big.par_iter().map(|&x| x * 3).seq_below(64).collect());
        assert_eq!(out.len(), 64);
        assert!(
            registry.snapshot().gauge("summit_par_threads").is_some(),
            "at the floor the pool must dispatch"
        );
    }

    #[test]
    fn seq_below_is_bit_identical_to_the_pool_path() {
        // Same floor, both sides of it, across adaptor stacks: the
        // inline dispatch must replay the exact chunk grid.
        let data: Vec<f64> = (0..200).map(|i| (i as f64).cos() * 1e6 + 1e-9).collect();
        for n in [0usize, 150, 100_000] {
            let gated = with_thread_count(4, || {
                data.par_iter()
                    .map(|&x| x * 1.000001)
                    .seq_below(n)
                    .fold(|| 0.0f64, |acc, x| acc + x)
                    .reduce(|| 0.0f64, |a, b| a + b)
            });
            let plain = with_thread_count(4, || {
                data.par_iter()
                    .map(|&x| x * 1.000001)
                    .fold(|| 0.0f64, |acc, x| acc + x)
                    .reduce(|| 0.0f64, |a, b| a + b)
            });
            assert_eq!(gated.to_bits(), plain.to_bits(), "floor={n}");
        }
        // The floor survives being buried under later adaptors.
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let idx: Vec<(usize, f64)> = with_thread_count(4, || {
            data.clone()
                .into_par_iter()
                .seq_below(1000)
                .enumerate()
                .map(|(i, x)| (i, x))
                .collect()
        });
        assert_eq!(idx.len(), data.len());
        assert_eq!(registry.snapshot().gauge("summit_par_threads"), None);
    }

    #[test]
    fn task_counter_is_thread_count_independent() {
        let count_tasks = |threads: usize| {
            let registry = summit_obs::registry::Registry::new();
            let _scope = registry.install();
            let v: Vec<usize> = (0..333).collect();
            let _: Vec<usize> = with_thread_count(threads, || v.par_iter().map(|&x| x).collect());
            registry.snapshot().counter("summit_par_tasks_total")
        };
        assert_eq!(count_tasks(1), count_tasks(7));
    }

    #[test]
    fn nested_parallelism_is_serialized() {
        let outer: Vec<usize> = (0..64).collect();
        let nested: Vec<usize> = with_thread_count(4, || {
            outer
                .par_iter()
                .map(|&i| {
                    let inner: Vec<usize> = (0..8usize).into_par_iter().collect();
                    i + inner.len()
                })
                .collect()
        });
        assert!(nested.iter().enumerate().all(|(i, &x)| x == i + 8));
    }

    #[test]
    fn scoped_registry_reaches_worker_threads() {
        // Counters recorded inside worker closures must land in the
        // registry installed on the *calling* thread.
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let v: Vec<usize> = (0..256).collect();
        let _: Vec<usize> = with_thread_count(4, || {
            v.par_iter()
                .map(|&x| {
                    summit_obs::counter("summit_par_test_worker_total").inc();
                    x
                })
                .collect()
        });
        assert_eq!(
            registry.snapshot().counter("summit_par_test_worker_total"),
            Some(256)
        );
    }
}
