//! The parallel-iterator traits and adaptors.
//!
//! A [`ParallelIterator`] here is a *description* of an indexed
//! pipeline: a source (slice, vector or range) plus a stack of adaptors
//! (`map`, `enumerate`, `flat_map_iter`, `fold`, …). Terminal methods
//! ([`ParallelIterator::collect`], [`ParallelIterator::reduce`]) hand
//! the description to the executor in [`crate::pool`], which cuts the
//! input index space into contiguous chunks and fans them out over
//! scoped worker threads.
//!
//! The determinism contract lives in the shapes of these adaptors:
//! [`ParallelIterator::into_chunk_iters`] must decompose the pipeline
//! into per-chunk iterators that, concatenated in chunk order, replay
//! the exact sequential element order. Every adaptor below preserves
//! that property, which is what makes `collect` (and the chunk-ordered
//! `fold`/`reduce` combine) bit-identical to a single-threaded run.

use crate::pool;
use std::ops::Range;
use std::sync::Arc;

/// A description of a data-parallel pipeline over an indexed input.
///
/// The three `#[doc(hidden)]` methods are the executor interface; call
/// sites use the adaptor and terminal methods, which mirror rayon's.
pub trait ParallelIterator: Sized {
    /// Element type the pipeline yields.
    type Item: Send;
    /// Per-chunk iterator type the pipeline decomposes into.
    type ChunkIter: Iterator<Item = Self::Item> + Send;

    /// Number of *input* indices the chunk grid is laid over.
    #[doc(hidden)]
    fn input_len(&self) -> usize;

    /// Smallest chunk the call site will accept (see
    /// [`ParallelIterator::with_min_len`]).
    #[doc(hidden)]
    fn min_chunk(&self) -> usize {
        1
    }

    /// Decomposes the pipeline into per-chunk iterators covering input
    /// indices `[k*chunk_size, (k+1)*chunk_size)` for chunk `k`, in
    /// chunk order. Building the iterators must be cheap; the work runs
    /// when a worker consumes them.
    #[doc(hidden)]
    fn into_chunk_iters(self, chunk_size: usize) -> Vec<Self::ChunkIter>;

    /// Applies `f` to every element in parallel (order-preserving).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pairs every element with its global index. Requires an indexed
    /// (one output per input) pipeline so chunk offsets are exact.
    fn enumerate(self) -> Enumerate<Self>
    where
        Self: IndexedParallelIterator,
    {
        Enumerate { base: self }
    }

    /// Maps every element to a *sequential* iterator and splices the
    /// results in input order (rayon's `flat_map_iter`).
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        U::IntoIter: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        FlatMapIter {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Guarantees at least `min` input elements per chunk — the
    /// chunk-size knob for hot sites whose per-element work is tiny.
    /// Chunk layout stays a pure function of `(input_len, min)`, so the
    /// determinism contract is unaffected.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    /// Folds each chunk into an accumulator seeded by `identity`,
    /// yielding one accumulator per chunk (rayon's `fold`). Combine the
    /// per-chunk accumulators with [`ParallelIterator::reduce`].
    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Send + Sync,
        F: Fn(A, Self::Item) -> A + Send + Sync,
    {
        Fold {
            base: self,
            identity: Arc::new(identity),
            fold_op: Arc::new(fold_op),
        }
    }

    /// Reduces all elements to one value: each chunk folds its elements
    /// left-to-right from `identity()`, then the per-chunk accumulators
    /// combine in ascending chunk order. With an associative `op` this
    /// equals the sequential reduction exactly; for non-associative
    /// (floating-point) `op`s the grouping is fixed by the chunk layout
    /// and therefore identical for every thread count.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let identity = Arc::new(identity);
        let op = Arc::new(op);
        let folded = Fold {
            base: self,
            identity: Arc::clone(&identity),
            fold_op: Arc::clone(&op),
        };
        let mut acc = identity();
        for chunk_acc in pool::run(folded).into_iter().flatten() {
            acc = op(acc, chunk_acc);
        }
        acc
    }

    /// Sums float elements through the exact merge tree: each chunk
    /// accumulates left-to-right from `zero()`, then chunk sums combine
    /// in ascending chunk order. The grouping is a pure function of the
    /// chunk grid, so the result is bit-identical for every thread
    /// count — unlike a re-associating `.sum::<f64>()`, which the
    /// `float-reduction` lint bans inside parallel pipelines.
    fn sum_stable(self) -> Self::Item
    where
        Self::Item: StableSum,
    {
        self.reduce(Self::Item::zero, StableSum::add)
    }

    /// Executes the pipeline and collects every element in input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Executes the pipeline and counts the elements it yields.
    fn count(self) -> usize {
        pool::run(self).into_iter().map(|chunk| chunk.len()).sum()
    }
}

/// Element types [`ParallelIterator::sum_stable`] can reduce through
/// the exact merge tree. Implemented for the float types whose addition
/// is non-associative; integers can keep using `fold`/`reduce` freely.
pub trait StableSum: Send {
    /// Additive identity.
    fn zero() -> Self;
    /// Element addition (applied chunk-locally, then across chunks in
    /// ascending chunk order).
    fn add(self, rhs: Self) -> Self;
}

impl StableSum for f32 {
    fn zero() -> Self {
        0.0
    }
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
}

impl StableSum for f64 {
    fn zero() -> Self {
        0.0
    }
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
}

/// Marker for pipelines that yield exactly one output per input index,
/// so a chunk's global offset is `chunk_index * chunk_size`. Sources
/// and element-wise adaptors are indexed; `flat_map_iter` and `fold`
/// are not.
pub trait IndexedParallelIterator: ParallelIterator {}

/// Conversion into a [`ParallelIterator`] by shared reference
/// (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Pipeline yielded by [`par_iter`](Self::par_iter).
    type Iter: ParallelIterator;

    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { data: self }
    }
}

/// Conversion into a [`ParallelIterator`] by value (`.into_par_iter()`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Pipeline yielded by [`into_par_iter`](Self::into_par_iter).
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { data: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Collection types buildable from a [`ParallelIterator`].
pub trait FromParallelIterator<T: Send>: Sized {
    /// Executes `iter` and assembles the result in input order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let chunks = pool::run(iter);
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

// --- sources -----------------------------------------------------------

/// Borrowing source over a slice (`.par_iter()`).
#[derive(Debug)]
pub struct ParSlice<'data, T> {
    data: &'data [T],
}

impl<'data, T: Sync + 'data> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;
    type ChunkIter = std::slice::Iter<'data, T>;

    fn input_len(&self) -> usize {
        self.data.len()
    }

    fn into_chunk_iters(self, chunk_size: usize) -> Vec<Self::ChunkIter> {
        if self.data.is_empty() {
            return Vec::new();
        }
        self.data
            .chunks(chunk_size.max(1))
            .map(<[T]>::iter)
            .collect()
    }
}

impl<'data, T: Sync + 'data> IndexedParallelIterator for ParSlice<'data, T> {}

/// Owning source over a vector (`.into_par_iter()`).
#[derive(Debug)]
pub struct ParVec<T> {
    data: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type ChunkIter = std::vec::IntoIter<T>;

    fn input_len(&self) -> usize {
        self.data.len()
    }

    fn into_chunk_iters(self, chunk_size: usize) -> Vec<Self::ChunkIter> {
        let chunk_size = chunk_size.max(1);
        let mut out = Vec::with_capacity(self.data.len().div_ceil(chunk_size));
        let mut source = self.data.into_iter();
        loop {
            let chunk: Vec<T> = source.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                return out;
            }
            out.push(chunk.into_iter());
        }
    }
}

impl<T: Send> IndexedParallelIterator for ParVec<T> {}

/// Source over a `usize` range (`.into_par_iter()`).
#[derive(Debug)]
pub struct ParRange {
    range: Range<usize>,
}

impl ParallelIterator for ParRange {
    type Item = usize;
    type ChunkIter = Range<usize>;

    fn input_len(&self) -> usize {
        self.range.len()
    }

    fn into_chunk_iters(self, chunk_size: usize) -> Vec<Self::ChunkIter> {
        let chunk_size = chunk_size.max(1);
        let mut out = Vec::with_capacity(self.range.len().div_ceil(chunk_size));
        let mut start = self.range.start;
        while start < self.range.end {
            let end = self.range.end.min(start.saturating_add(chunk_size));
            out.push(start..end);
            start = end;
        }
        out
    }
}

impl IndexedParallelIterator for ParRange {}

// --- adaptors ----------------------------------------------------------

/// Element-wise transformation (see [`ParallelIterator::map`]).
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
    type Item = R;
    type ChunkIter = MapChunk<I::ChunkIter, F>;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }

    fn into_chunk_iters(self, chunk_size: usize) -> Vec<Self::ChunkIter> {
        let f = self.f;
        self.base
            .into_chunk_iters(chunk_size)
            .into_iter()
            .map(|base| MapChunk {
                base,
                f: Arc::clone(&f),
            })
            .collect()
    }
}

impl<I, F, R> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
}

/// Per-chunk iterator of [`Map`].
#[derive(Debug)]
pub struct MapChunk<C, F> {
    base: C,
    f: Arc<F>,
}

impl<C, F, R> Iterator for MapChunk<C, F>
where
    C: Iterator,
    F: Fn(C::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.base.next().map(|x| (self.f)(x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

/// Global-index pairing (see [`ParallelIterator::enumerate`]).
#[derive(Debug)]
pub struct Enumerate<I> {
    base: I,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: IndexedParallelIterator,
{
    type Item = (usize, I::Item);
    type ChunkIter = EnumerateChunk<I::ChunkIter>;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }

    fn into_chunk_iters(self, chunk_size: usize) -> Vec<Self::ChunkIter> {
        let chunk_size = chunk_size.max(1);
        self.base
            .into_chunk_iters(chunk_size)
            .into_iter()
            .enumerate()
            .map(|(k, base)| EnumerateChunk {
                base,
                next: k * chunk_size,
            })
            .collect()
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {}

/// Per-chunk iterator of [`Enumerate`]; `next` starts at the chunk's
/// global offset.
#[derive(Debug)]
pub struct EnumerateChunk<C> {
    base: C,
    next: usize,
}

impl<C: Iterator> Iterator for EnumerateChunk<C> {
    type Item = (usize, C::Item);

    fn next(&mut self) -> Option<(usize, C::Item)> {
        let x = self.base.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

/// Order-preserving flatten of per-element sequential iterators (see
/// [`ParallelIterator::flat_map_iter`]).
#[derive(Debug)]
pub struct FlatMapIter<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, F, U> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    U::IntoIter: Send,
    F: Fn(I::Item) -> U + Send + Sync,
{
    type Item = U::Item;
    type ChunkIter = FlatMapIterChunk<I::ChunkIter, F, U>;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }

    fn into_chunk_iters(self, chunk_size: usize) -> Vec<Self::ChunkIter> {
        let f = self.f;
        self.base
            .into_chunk_iters(chunk_size)
            .into_iter()
            .map(|base| FlatMapIterChunk {
                base,
                f: Arc::clone(&f),
                current: None,
            })
            .collect()
    }
}

/// Per-chunk iterator of [`FlatMapIter`].
#[derive(Debug)]
pub struct FlatMapIterChunk<C, F, U: IntoIterator> {
    base: C,
    f: Arc<F>,
    current: Option<U::IntoIter>,
}

impl<C, F, U> Iterator for FlatMapIterChunk<C, F, U>
where
    C: Iterator,
    U: IntoIterator,
    F: Fn(C::Item) -> U,
{
    type Item = U::Item;

    fn next(&mut self) -> Option<U::Item> {
        loop {
            if let Some(current) = &mut self.current {
                if let Some(x) = current.next() {
                    return Some(x);
                }
            }
            self.current = Some((self.f)(self.base.next()?).into_iter());
        }
    }
}

/// Chunk-size floor (see [`ParallelIterator::with_min_len`]).
#[derive(Debug)]
pub struct MinLen<I> {
    base: I,
    min: usize,
}

impl<I: ParallelIterator> ParallelIterator for MinLen<I> {
    type Item = I::Item;
    type ChunkIter = I::ChunkIter;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk().max(self.min).max(1)
    }

    fn into_chunk_iters(self, chunk_size: usize) -> Vec<Self::ChunkIter> {
        self.base.into_chunk_iters(chunk_size)
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for MinLen<I> {}

/// Per-chunk accumulator pipeline (see [`ParallelIterator::fold`]).
#[derive(Debug)]
pub struct Fold<I, ID, F> {
    pub(crate) base: I,
    pub(crate) identity: Arc<ID>,
    pub(crate) fold_op: Arc<F>,
}

impl<I, A, ID, F> ParallelIterator for Fold<I, ID, F>
where
    I: ParallelIterator,
    A: Send,
    ID: Fn() -> A + Send + Sync,
    F: Fn(A, I::Item) -> A + Send + Sync,
{
    type Item = A;
    type ChunkIter = FoldChunk<I::ChunkIter, ID, F>;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }

    fn into_chunk_iters(self, chunk_size: usize) -> Vec<Self::ChunkIter> {
        let identity = self.identity;
        let fold_op = self.fold_op;
        self.base
            .into_chunk_iters(chunk_size)
            .into_iter()
            .map(|base| FoldChunk {
                base: Some(base),
                identity: Arc::clone(&identity),
                fold_op: Arc::clone(&fold_op),
            })
            .collect()
    }
}

/// Per-chunk iterator of [`Fold`]: yields the chunk's accumulator once,
/// computed lazily on first `next` (i.e. on the worker thread).
#[derive(Debug)]
pub struct FoldChunk<C, ID, F> {
    base: Option<C>,
    identity: Arc<ID>,
    fold_op: Arc<F>,
}

impl<C, A, ID, F> Iterator for FoldChunk<C, ID, F>
where
    C: Iterator,
    ID: Fn() -> A,
    F: Fn(A, C::Item) -> A,
{
    type Item = A;

    fn next(&mut self) -> Option<A> {
        let base = self.base.take()?;
        let mut acc = (self.identity)();
        for x in base {
            acc = (self.fold_op)(acc, x);
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::with_thread_count;

    #[test]
    fn sum_stable_is_bit_identical_across_thread_counts() {
        // Magnitudes spread over ~12 orders so any re-association of
        // the additions changes low-order mantissa bits.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| 1.0 + (i as f64) * 1e-12 + ((i % 7) as f64) * 1e3)
            .collect();
        let baseline = with_thread_count(1, || xs.par_iter().map(|&x| x).sum_stable());
        for threads in [2, 4, 0] {
            let got = if threads == 0 {
                xs.par_iter().map(|&x| x).sum_stable()
            } else {
                with_thread_count(threads, || xs.par_iter().map(|&x| x).sum_stable())
            };
            assert_eq!(baseline.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn sum_stable_f32_zero_and_add() {
        let xs: Vec<f32> = vec![0.1, 0.2, 0.3];
        let a = with_thread_count(1, || xs.par_iter().map(|&x| x).sum_stable());
        let b = with_thread_count(3, || xs.par_iter().map(|&x| x).sum_stable());
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
