//! The parallel-iterator traits and adaptors.
//!
//! A [`ParallelIterator`] here is a *description* of an indexed
//! pipeline: a source (slice, vector or range) plus a stack of adaptors
//! (`map`, `enumerate`, `flat_map_iter`, `fold`, …). Terminal methods
//! ([`ParallelIterator::collect`], [`ParallelIterator::reduce`]) hand
//! the description to the executor in [`crate::pool`], which cuts the
//! input index space into contiguous chunks and fans them out over the
//! persistent worker pool.
//!
//! The executor interface is [`Source`]: a pipeline freezes into one
//! shared, immutable chunk source (`into_source`), and every worker
//! materializes the chunks it claims straight from `&Source` via
//! [`Source::chunk_iter`]. Because the source is borrowed — never
//! moved, split or handed over — workers need no per-chunk slots and
//! no locks to pick up work; the atomic band cursors in the pool are
//! the only scheduling state.
//!
//! The determinism contract lives in the shapes of these adaptors:
//! `chunk_iter(range)` must replay exactly the elements a sequential
//! run would produce for those input indices, so the chunks
//! concatenated in ascending chunk order equal the sequential result.
//! Every adaptor below preserves that property, which is what makes
//! `collect` (and the chunk-ordered `fold`/`reduce` combine)
//! bit-identical to a single-threaded run.

use crate::pool;
use std::ops::Range;
use std::sync::Mutex;

/// A description of a data-parallel pipeline over an indexed input.
///
/// The three `#[doc(hidden)]` methods are the executor interface; call
/// sites use the adaptor and terminal methods, which mirror rayon's.
pub trait ParallelIterator: Sized {
    /// Element type the pipeline yields.
    type Item: Send;
    /// Frozen chunk source the pipeline executes through.
    type Source: Source<Item = Self::Item>;

    /// Number of *input* indices the chunk grid is laid over.
    #[doc(hidden)]
    fn input_len(&self) -> usize;

    /// Smallest chunk the call site will accept (see
    /// [`ParallelIterator::with_min_len`]).
    #[doc(hidden)]
    fn min_chunk(&self) -> usize {
        1
    }

    /// Input-size floor below which the execution runs inline on the
    /// calling thread (see [`ParallelIterator::seq_below`]).
    #[doc(hidden)]
    fn seq_floor(&self) -> usize {
        0
    }

    /// Freezes the pipeline into a [`Source`] all workers share by
    /// reference. `chunk_size` is the executor's (deterministic) grid
    /// pitch; only by-value sources need it (to pre-split their
    /// elements into per-chunk bins).
    #[doc(hidden)]
    fn into_source(self, chunk_size: usize) -> Self::Source;

    /// Applies `f` to every element in parallel (order-preserving).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs every element with its global index. Requires an indexed
    /// (one output per input) pipeline so chunk offsets are exact.
    fn enumerate(self) -> Enumerate<Self>
    where
        Self: IndexedParallelIterator,
    {
        Enumerate { base: self }
    }

    /// Maps every element to a *sequential* iterator and splices the
    /// results in input order (rayon's `flat_map_iter`).
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Guarantees at least `min` input elements per chunk — the
    /// chunk-size knob for hot sites whose per-element work is tiny.
    /// Chunk layout stays a pure function of `(input_len, min)`, so the
    /// determinism contract is unaffected.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    /// Dispatches inline — no pool wakeup, no epoch — whenever the
    /// input holds fewer than `n` elements, and in parallel otherwise.
    /// The size-aware dispatch knob for kernels whose total work at
    /// small sizes is cheaper than waking the pool (a handful of
    /// correlation pairs, a short KDE grid).
    ///
    /// The inline path replays the exact chunk grid in ascending chunk
    /// order, so every result — including non-associative float
    /// reductions — is bit-identical to the parallel path; only the
    /// dispatch mechanism changes.
    fn seq_below(self, n: usize) -> SeqBelow<Self> {
        SeqBelow { base: self, n }
    }

    /// Folds each chunk into an accumulator seeded by `identity`,
    /// yielding one accumulator per chunk (rayon's `fold`). Combine the
    /// per-chunk accumulators with [`ParallelIterator::reduce`].
    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Send + Sync,
        F: Fn(A, Self::Item) -> A + Send + Sync,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    /// Reduces all elements to one value: each chunk folds its elements
    /// left-to-right from `identity()`, then the per-chunk accumulators
    /// combine in ascending chunk order. With an associative `op` this
    /// equals the sequential reduction exactly; for non-associative
    /// (floating-point) `op`s the grouping is fixed by the chunk layout
    /// and therefore identical for every thread count.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let folded = Fold {
            base: self,
            identity: &identity,
            fold_op: &op,
        };
        let mut acc = identity();
        for chunk_acc in pool::run(folded).into_iter().flatten() {
            acc = op(acc, chunk_acc);
        }
        acc
    }

    /// Sums float elements through the exact merge tree: each chunk
    /// accumulates left-to-right from `zero()`, then chunk sums combine
    /// in ascending chunk order. The grouping is a pure function of the
    /// chunk grid, so the result is bit-identical for every thread
    /// count — unlike a re-associating `.sum::<f64>()`, which the
    /// `float-reduction` lint bans inside parallel pipelines.
    fn sum_stable(self) -> Self::Item
    where
        Self::Item: StableSum,
    {
        self.reduce(Self::Item::zero, StableSum::add)
    }

    /// Executes the pipeline and collects every element in input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Executes the pipeline and counts the elements it yields.
    fn count(self) -> usize {
        pool::run(self).into_iter().map(|chunk| chunk.len()).sum()
    }
}

/// A frozen pipeline every worker reads chunks from by shared
/// reference.
///
/// `Sync` is the load-bearing bound: the persistent pool hands the
/// *same* `&Source` to every participating thread, and a chunk's
/// content must depend only on its index range — never on which worker
/// asks, or in what order. The executor calls
/// [`chunk_iter`](Source::chunk_iter) exactly once per chunk (the
/// atomic band cursors guarantee exactly-once claims).
pub trait Source: Sync {
    /// Element type the chunks yield.
    type Item: Send;
    /// Iterator over one chunk's elements, borrowing the source.
    type ChunkIter<'s>: Iterator<Item = Self::Item>
    where
        Self: 's;

    /// Materializes the elements for input indices `range`. Building
    /// the iterator must be cheap; the work runs as the caller drains
    /// it.
    fn chunk_iter(&self, range: Range<usize>) -> Self::ChunkIter<'_>;
}

/// Element types [`ParallelIterator::sum_stable`] can reduce through
/// the exact merge tree. Implemented for the float types whose addition
/// is non-associative; integers can keep using `fold`/`reduce` freely.
pub trait StableSum: Send {
    /// Additive identity.
    fn zero() -> Self;
    /// Element addition (applied chunk-locally, then across chunks in
    /// ascending chunk order).
    fn add(self, rhs: Self) -> Self;
}

impl StableSum for f32 {
    fn zero() -> Self {
        0.0
    }
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
}

impl StableSum for f64 {
    fn zero() -> Self {
        0.0
    }
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
}

/// Marker for pipelines that yield exactly one output per input index,
/// so a chunk's global offset is `chunk_index * chunk_size`. Sources
/// and element-wise adaptors are indexed; `flat_map_iter` and `fold`
/// are not.
pub trait IndexedParallelIterator: ParallelIterator {}

/// Conversion into a [`ParallelIterator`] by shared reference
/// (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Pipeline yielded by [`par_iter`](Self::par_iter).
    type Iter: ParallelIterator;

    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { data: self }
    }
}

/// Conversion into a [`ParallelIterator`] by value (`.into_par_iter()`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Pipeline yielded by [`into_par_iter`](Self::into_par_iter).
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { data: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Collection types buildable from a [`ParallelIterator`].
pub trait FromParallelIterator<T: Send>: Sized {
    /// Executes `iter` and assembles the result in input order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let chunks = pool::run(iter);
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

// --- sources -----------------------------------------------------------

/// Borrowing source over a slice (`.par_iter()`). Doubles as its own
/// [`Source`]: a chunk is just a subslice iterator.
#[derive(Debug)]
pub struct ParSlice<'data, T> {
    data: &'data [T],
}

impl<'data, T: Sync + 'data> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;
    type Source = Self;

    fn input_len(&self) -> usize {
        self.data.len()
    }

    fn into_source(self, _chunk_size: usize) -> Self {
        self
    }
}

impl<'data, T: Sync + 'data> Source for ParSlice<'data, T> {
    type Item = &'data T;
    type ChunkIter<'s>
        = std::slice::Iter<'data, T>
    where
        Self: 's;

    fn chunk_iter(&self, range: Range<usize>) -> std::slice::Iter<'data, T> {
        let end = range.end.min(self.data.len());
        self.data[range.start.min(end)..end].iter()
    }
}

impl<'data, T: Sync + 'data> IndexedParallelIterator for ParSlice<'data, T> {}

/// Owning source over a vector (`.into_par_iter()`).
#[derive(Debug)]
pub struct ParVec<T> {
    data: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type Source = VecSource<T>;

    fn input_len(&self) -> usize {
        self.data.len()
    }

    fn into_source(self, chunk_size: usize) -> VecSource<T> {
        let chunk_size = chunk_size.max(1);
        let mut bins = Vec::with_capacity(self.data.len().div_ceil(chunk_size));
        let mut source = self.data.into_iter();
        loop {
            let bin: Vec<T> = source.by_ref().take(chunk_size).collect();
            if bin.is_empty() {
                break;
            }
            bins.push(Mutex::new(Some(bin.into_iter())));
        }
        VecSource { chunk_size, bins }
    }
}

impl<T: Send> IndexedParallelIterator for ParVec<T> {}

/// Frozen by-value source: elements pre-split into per-chunk bins at
/// freeze time (preserving move semantics — no `Clone` bound on
/// `into_par_iter`). Each bin sits behind its own `Mutex<Option<..>>`
/// so a `&self` chunk claim can move it out; the lock is an ownership
/// formality, never contended — the pool's band cursors already
/// guarantee each chunk index is claimed by exactly one worker.
#[derive(Debug)]
pub struct VecSource<T> {
    chunk_size: usize,
    bins: Vec<Mutex<Option<std::vec::IntoIter<T>>>>,
}

impl<T: Send> Source for VecSource<T> {
    type Item = T;
    type ChunkIter<'s>
        = std::vec::IntoIter<T>
    where
        Self: 's;

    fn chunk_iter(&self, range: Range<usize>) -> std::vec::IntoIter<T> {
        let k = range.start / self.chunk_size;
        self.bins
            .get(k)
            .and_then(|bin| {
                bin.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
            })
            .unwrap_or_default()
    }
}

/// Source over a `usize` range (`.into_par_iter()`). Doubles as its
/// own [`Source`]: a chunk is the sub-range shifted to the global
/// origin.
#[derive(Debug)]
pub struct ParRange {
    range: Range<usize>,
}

impl ParallelIterator for ParRange {
    type Item = usize;
    type Source = Self;

    fn input_len(&self) -> usize {
        self.range.len()
    }

    fn into_source(self, _chunk_size: usize) -> Self {
        self
    }
}

impl Source for ParRange {
    type Item = usize;
    type ChunkIter<'s>
        = Range<usize>
    where
        Self: 's;

    fn chunk_iter(&self, range: Range<usize>) -> Range<usize> {
        let start = self.range.start.saturating_add(range.start);
        let end = self.range.start.saturating_add(range.end);
        start..end.min(self.range.end)
    }
}

impl IndexedParallelIterator for ParRange {}

// --- adaptors ----------------------------------------------------------

/// Element-wise transformation (see [`ParallelIterator::map`]).
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
    type Item = R;
    type Source = MapSource<I::Source, F>;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }

    fn seq_floor(&self) -> usize {
        self.base.seq_floor()
    }

    fn into_source(self, chunk_size: usize) -> MapSource<I::Source, F> {
        MapSource {
            base: self.base.into_source(chunk_size),
            f: self.f,
        }
    }
}

impl<I, F, R> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
}

/// Frozen [`Map`]: shares one closure across all chunks by reference.
#[derive(Debug)]
pub struct MapSource<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> Source for MapSource<S, F>
where
    S: Source,
    R: Send,
    F: Fn(S::Item) -> R + Send + Sync,
{
    type Item = R;
    type ChunkIter<'s>
        = MapChunk<'s, S::ChunkIter<'s>, F>
    where
        Self: 's;

    fn chunk_iter(&self, range: Range<usize>) -> MapChunk<'_, S::ChunkIter<'_>, F> {
        MapChunk {
            base: self.base.chunk_iter(range),
            f: &self.f,
        }
    }
}

/// Per-chunk iterator of [`MapSource`].
#[derive(Debug)]
pub struct MapChunk<'s, C, F> {
    base: C,
    f: &'s F,
}

impl<C, F, R> Iterator for MapChunk<'_, C, F>
where
    C: Iterator,
    F: Fn(C::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.base.next().map(|x| (self.f)(x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

/// Global-index pairing (see [`ParallelIterator::enumerate`]).
#[derive(Debug)]
pub struct Enumerate<I> {
    base: I,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: IndexedParallelIterator,
{
    type Item = (usize, I::Item);
    type Source = EnumerateSource<I::Source>;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }

    fn seq_floor(&self) -> usize {
        self.base.seq_floor()
    }

    fn into_source(self, chunk_size: usize) -> EnumerateSource<I::Source> {
        EnumerateSource {
            base: self.base.into_source(chunk_size),
        }
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {}

/// Frozen [`Enumerate`]: the chunk's input range *is* its global index
/// range (indexed pipelines are one-output-per-input).
#[derive(Debug)]
pub struct EnumerateSource<S> {
    base: S,
}

impl<S: Source> Source for EnumerateSource<S> {
    type Item = (usize, S::Item);
    type ChunkIter<'s>
        = EnumerateChunk<S::ChunkIter<'s>>
    where
        Self: 's;

    fn chunk_iter(&self, range: Range<usize>) -> EnumerateChunk<S::ChunkIter<'_>> {
        EnumerateChunk {
            next: range.start,
            base: self.base.chunk_iter(range),
        }
    }
}

/// Per-chunk iterator of [`EnumerateSource`]; `next` starts at the
/// chunk's global offset.
#[derive(Debug)]
pub struct EnumerateChunk<C> {
    base: C,
    next: usize,
}

impl<C: Iterator> Iterator for EnumerateChunk<C> {
    type Item = (usize, C::Item);

    fn next(&mut self) -> Option<(usize, C::Item)> {
        let x = self.base.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

/// Order-preserving flatten of per-element sequential iterators (see
/// [`ParallelIterator::flat_map_iter`]).
#[derive(Debug)]
pub struct FlatMapIter<I, F> {
    base: I,
    f: F,
}

impl<I, F, U> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(I::Item) -> U + Send + Sync,
{
    type Item = U::Item;
    type Source = FlatMapSource<I::Source, F>;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }

    fn seq_floor(&self) -> usize {
        self.base.seq_floor()
    }

    fn into_source(self, chunk_size: usize) -> FlatMapSource<I::Source, F> {
        FlatMapSource {
            base: self.base.into_source(chunk_size),
            f: self.f,
        }
    }
}

/// Frozen [`FlatMapIter`].
#[derive(Debug)]
pub struct FlatMapSource<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Source for FlatMapSource<S, F>
where
    S: Source,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(S::Item) -> U + Send + Sync,
{
    type Item = U::Item;
    type ChunkIter<'s>
        = FlatMapChunk<'s, S::ChunkIter<'s>, F, U>
    where
        Self: 's;

    fn chunk_iter(&self, range: Range<usize>) -> FlatMapChunk<'_, S::ChunkIter<'_>, F, U> {
        FlatMapChunk {
            base: self.base.chunk_iter(range),
            f: &self.f,
            current: None,
        }
    }
}

/// Per-chunk iterator of [`FlatMapSource`].
#[derive(Debug)]
pub struct FlatMapChunk<'s, C, F, U: IntoIterator> {
    base: C,
    f: &'s F,
    current: Option<U::IntoIter>,
}

impl<C, F, U> Iterator for FlatMapChunk<'_, C, F, U>
where
    C: Iterator,
    U: IntoIterator,
    F: Fn(C::Item) -> U,
{
    type Item = U::Item;

    fn next(&mut self) -> Option<U::Item> {
        loop {
            if let Some(current) = &mut self.current {
                if let Some(x) = current.next() {
                    return Some(x);
                }
            }
            self.current = Some((self.f)(self.base.next()?).into_iter());
        }
    }
}

/// Chunk-size floor (see [`ParallelIterator::with_min_len`]).
#[derive(Debug)]
pub struct MinLen<I> {
    base: I,
    min: usize,
}

impl<I: ParallelIterator> ParallelIterator for MinLen<I> {
    type Item = I::Item;
    type Source = I::Source;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk().max(self.min).max(1)
    }

    fn seq_floor(&self) -> usize {
        self.base.seq_floor()
    }

    fn into_source(self, chunk_size: usize) -> I::Source {
        self.base.into_source(chunk_size)
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for MinLen<I> {}

/// Size-aware dispatch floor (see [`ParallelIterator::seq_below`]).
/// Pass-through in every respect except [`ParallelIterator::seq_floor`]:
/// the chunk grid, the source and the element stream are untouched.
#[derive(Debug)]
pub struct SeqBelow<I> {
    base: I,
    n: usize,
}

impl<I: ParallelIterator> ParallelIterator for SeqBelow<I> {
    type Item = I::Item;
    type Source = I::Source;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }

    fn seq_floor(&self) -> usize {
        self.base.seq_floor().max(self.n)
    }

    fn into_source(self, chunk_size: usize) -> I::Source {
        self.base.into_source(chunk_size)
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for SeqBelow<I> {}

/// Per-chunk accumulator pipeline (see [`ParallelIterator::fold`]).
#[derive(Debug)]
pub struct Fold<I, ID, F> {
    base: I,
    identity: ID,
    fold_op: F,
}

impl<I, A, ID, F> ParallelIterator for Fold<I, ID, F>
where
    I: ParallelIterator,
    A: Send,
    ID: Fn() -> A + Send + Sync,
    F: Fn(A, I::Item) -> A + Send + Sync,
{
    type Item = A;
    type Source = FoldSource<I::Source, ID, F>;

    fn input_len(&self) -> usize {
        self.base.input_len()
    }

    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }

    fn seq_floor(&self) -> usize {
        self.base.seq_floor()
    }

    fn into_source(self, chunk_size: usize) -> FoldSource<I::Source, ID, F> {
        FoldSource {
            base: self.base.into_source(chunk_size),
            identity: self.identity,
            fold_op: self.fold_op,
        }
    }
}

/// Frozen [`Fold`]: a chunk yields its accumulator once. The fold runs
/// inside [`Source::chunk_iter`], i.e. on the worker that claimed the
/// chunk.
#[derive(Debug)]
pub struct FoldSource<S, ID, F> {
    base: S,
    identity: ID,
    fold_op: F,
}

impl<S, A, ID, F> Source for FoldSource<S, ID, F>
where
    S: Source,
    A: Send,
    ID: Fn() -> A + Send + Sync,
    F: Fn(A, S::Item) -> A + Send + Sync,
{
    type Item = A;
    type ChunkIter<'s>
        = std::iter::Once<A>
    where
        Self: 's;

    fn chunk_iter(&self, range: Range<usize>) -> std::iter::Once<A> {
        let mut acc = (self.identity)();
        for x in self.base.chunk_iter(range) {
            acc = (self.fold_op)(acc, x);
        }
        std::iter::once(acc)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::with_thread_count;

    #[test]
    fn sum_stable_is_bit_identical_across_thread_counts() {
        // Magnitudes spread over ~12 orders so any re-association of
        // the additions changes low-order mantissa bits.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| 1.0 + (i as f64) * 1e-12 + ((i % 7) as f64) * 1e3)
            .collect();
        let baseline = with_thread_count(1, || xs.par_iter().map(|&x| x).sum_stable());
        for threads in [2, 4, 0] {
            let got = if threads == 0 {
                xs.par_iter().map(|&x| x).sum_stable()
            } else {
                with_thread_count(threads, || xs.par_iter().map(|&x| x).sum_stable())
            };
            assert_eq!(baseline.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn sum_stable_f32_zero_and_add() {
        let xs: Vec<f32> = vec![0.1, 0.2, 0.3];
        let a = with_thread_count(1, || xs.par_iter().map(|&x| x).sum_stable());
        let b = with_thread_count(3, || xs.par_iter().map(|&x| x).sum_stable());
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn vec_source_moves_elements_without_cloning() {
        // A type without `Clone`: by-value pipelines must still work,
        // proving the frozen source hands elements over by move.
        #[derive(Debug, PartialEq)]
        struct NoClone(usize);
        let data: Vec<NoClone> = (0..100).map(NoClone).collect();
        let out: Vec<usize> =
            with_thread_count(4, || data.into_par_iter().map(|x| x.0 * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sources_replay_exact_ranges() {
        let v: Vec<u32> = (0..50).collect();
        let slice_src = v.par_iter().into_source(16);
        let got: Vec<&u32> = slice_src.chunk_iter(16..32).collect();
        assert_eq!(got, v[16..32].iter().collect::<Vec<_>>());
        // Out-of-grid tails clamp instead of panicking.
        assert_eq!(slice_src.chunk_iter(48..64).count(), 2);

        let range_src = (10..60usize).into_par_iter().into_source(16);
        let got: Vec<usize> = range_src.chunk_iter(32..48).collect();
        assert_eq!(got, (42..58).collect::<Vec<_>>());
        assert_eq!(range_src.chunk_iter(48..64).count(), 2);

        let vec_src = v.clone().into_par_iter().into_source(16);
        let got: Vec<u32> = vec_src.chunk_iter(16..32).collect();
        assert_eq!(got, (16..32).collect::<Vec<_>>());
        // A bin is consumable exactly once; re-claims come back empty.
        assert_eq!(vec_src.chunk_iter(16..32).count(), 0);
    }
}
