//! Power-dynamics study on a synthetic job population: rising/falling
//! edge statistics and dominant swing frequencies, the Section 4.2
//! analysis of the paper.
//!
//! ```sh
//! cargo run --release --example power_dynamics
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::analysis::edges::{detect_edges_for_job, EDGE_THRESHOLD_W_PER_NODE};
use summit_repro::analysis::fft::dominant_component;
use summit_repro::core::pipeline::PopulationScenario;
use summit_repro::core::report::{pct, Table};
use summit_repro::sim::jobstats::job_power_series;
use summit_repro::sim::power::PowerModel;

fn main() {
    let scenario = PopulationScenario::paper_year(0.002); // ~1,700 jobs
    let jobs = scenario.generate();
    let pm = PowerModel::new(scenario.seed);
    println!(
        "analyzing {} jobs (edge threshold {} W/node per 10 s) ...",
        jobs.len(),
        EDGE_THRESHOLD_W_PER_NODE
    );

    let mut edge_free = 0usize;
    let mut per_class: Vec<(usize, usize, Vec<f64>, Vec<f64>)> =
        (0..5).map(|_| (0, 0, Vec::new(), Vec::new())).collect();
    for job in &jobs {
        let series = job_power_series(job, &pm, 10.0);
        let edges = detect_edges_for_job(&series, job.record.node_count as usize);
        let slot = &mut per_class[(job.class() - 1) as usize];
        slot.0 += 1;
        if edges.is_empty() {
            edge_free += 1;
            continue;
        }
        slot.1 += 1;
        slot.2
            .extend(edges.iter().filter_map(|e| e.duration_s.map(|d| d / 60.0)));
        if let Some(dom) = dominant_component(series.diff().values(), 0.1) {
            slot.3.push(dom.frequency_hz);
        }
    }

    let mut t = Table::new(
        "edge behaviour per scheduling class",
        &[
            "class",
            "jobs",
            "with edges",
            "median edge duration (min)",
            "median dominant freq (Hz)",
        ],
    );
    for (i, (jobs_n, with_edges, durations, freqs)) in per_class.iter().enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            jobs_n.to_string(),
            with_edges.to_string(),
            format!("{:.1}", summit_repro::analysis::stats::median(durations)),
            format!("{:.4}", summit_repro::analysis::stats::median(freqs)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "edge-free jobs: {} (paper reports 96.9%); the dominant period clusters near 200 s",
        pct(edge_free as f64 / jobs.len() as f64)
    );
}
