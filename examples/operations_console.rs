//! Live operations console: streams engine ticks into the monitoring
//! dashboard the way Summit's telemetry system feeds its MTW operations
//! room (paper Figure 2), printing the dashboard once a minute and every
//! alert as it fires.
//!
//! ```sh
//! cargo run --release --example operations_console
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::core::monitoring::{OpsConsole, Thresholds};
use summit_repro::core::pipeline::summer_t0;
use summit_repro::sim::engine::{Engine, EngineConfig};
use summit_repro::sim::jobs::JobGenerator;
use summit_repro::sim::spec;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cabinets = 10;
    let mut engine = Engine::new(EngineConfig::small(cabinets), summer_t0());
    // Scale the swing alarm to the floor slice (2 MW/min on 4,626 nodes
    // ~= 78 kW/min on 180).
    let nodes_in_slice = cabinets as f64 * spec::NODES_PER_CABINET as f64;
    let thresholds = Thresholds {
        swing_w_per_min: 2.0e6 * nodes_in_slice / spec::TOTAL_NODES as f64,
        ..Default::default()
    };
    let mut console = OpsConsole::new(thresholds, 300);

    // Stage a workload with one violent swing to trip the swing alarm.
    let mut rng = StdRng::seed_from_u64(5);
    let mut gen = JobGenerator::new();
    let t0 = summer_t0();
    for (at, nodes, dur, gpu) in [
        (60.0, 60u32, 300.0, 0.7),
        (420.0, 180, 240.0, 0.95), // the swing
        (780.0, 30, 200.0, 0.5),
    ] {
        let mut job = gen.generate_with_class(&mut rng, t0 + at, 5);
        job.record.node_count = nodes.min((cabinets * 18) as u32);
        job.record.class = summit_repro::sim::spec::class_of_node_count(job.record.node_count);
        job.record.end_time = job.record.begin_time + dur;
        job.profile.gpu_intensity = gpu;
        job.profile.ramp_s = 20.0;
        engine.scheduler().submit(job);
    }

    for minute in 0..18 {
        for _ in 0..60 {
            let tick = engine.step();
            console.observe(&tick);
        }
        // Print fresh alerts immediately, dashboards periodically.
        for alert in console.drain_alerts() {
            println!("!! [{:?}] t={:.0}s {}", alert.kind, alert.t, alert.detail);
        }
        if minute % 4 == 3 {
            println!("{}", console.render());
        }
    }
}
