//! Quickstart: simulate a slice of the Summit data center and read its
//! power, thermal and efficiency signals.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::core::pipeline::{run_burst_schedule, summer_t0, Burst};
use summit_repro::core::report::{watts, Table};
use summit_repro::sim::engine::EngineConfig;

fn main() {
    // A 12-cabinet (216-node) floor slice for one simulated hour at 1 Hz,
    // positioned in late July (summer cooling conditions).
    let cabinets = 12;
    let bursts = vec![
        Burst {
            at_s: 300.0,
            nodes: 108,
            duration_s: 600.0,
            gpu_intensity: 0.9,
        },
        Burst {
            at_s: 1500.0,
            nodes: 216,
            duration_s: 900.0,
            gpu_intensity: 0.95,
        },
        Burst {
            at_s: 3000.0,
            nodes: 54,
            duration_s: 400.0,
            gpu_intensity: 0.7,
        },
    ];
    println!("simulating {cabinets} cabinets for 1 hour at 1 Hz ...");
    let run = run_burst_schedule(EngineConfig::small(cabinets), summer_t0(), 3600.0, &bursts);

    let power = run.power_series();
    let pue = run.pue_series();
    let gpu_t = run.gpu_temp_max_series();

    let mut t = Table::new(
        "hourly summary (10-minute rows)",
        &["minute", "power", "PUE", "max GPU temp C", "MTW return C"],
    );
    let per_row = 600; // seconds
    for (i, chunk) in power.values().chunks(per_row).enumerate() {
        let p = summit_repro::analysis::stats::nanmean(chunk);
        let q = summit_repro::analysis::stats::nanmean(
            &pue.values()[i * per_row..(i * per_row + chunk.len())],
        );
        let g = summit_repro::analysis::stats::nanmax(
            &gpu_t.values()[i * per_row..(i * per_row + chunk.len())],
        );
        let m = summit_repro::analysis::stats::nanmean(
            &run.mtw_return_series().values()[i * per_row..(i * per_row + chunk.len())],
        );
        t.row(vec![
            format!("{}-{}", i * 10, i * 10 + 10),
            watts(p),
            format!("{q:.3}"),
            format!("{g:.1}"),
            format!("{m:.1}"),
        ]);
    }
    println!("{}", t.render());

    let total = summit_repro::analysis::pue::integrate_energy(&power);
    println!(
        "energy: {:.1} kWh over the hour; idle floor {:.0} W/node; peak {:.0} W/node",
        total.energy_j / 3.6e6,
        summit_repro::analysis::stats::nanmin(power.values()) / (cabinets as f64 * 18.0),
        summit_repro::analysis::stats::nanmax(power.values()) / (cabinets as f64 * 18.0),
    );
    println!(
        "power sparkline: {}",
        summit_repro::core::report::sparkline(power.downsample_mean(60).values())
    );
}
