//! The out-of-band telemetry pipeline end to end: 1 Hz frame generation,
//! multi-producer fan-in with the propagation-delay model, lossless
//! archival compression, and 10-second window coarsening.
//!
//! ```sh
//! cargo run --release --example telemetry_pipeline
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::core::report::eng;
use summit_repro::sim::engine::{Engine, EngineConfig, StepOptions};
use summit_repro::sim::spec;
use summit_repro::telemetry::catalog::METRIC_COUNT;
use summit_repro::telemetry::ids::NodeId;
use summit_repro::telemetry::store::TelemetryStore;
use summit_repro::telemetry::stream::fan_in_batches;
use summit_repro::telemetry::window::WindowAggregator;

fn main() {
    let cabinets = 8;
    let minutes = 3;
    let mut engine = Engine::new(EngineConfig::small(cabinets), 0.0);
    let nodes = engine.topology().node_count();
    let store = TelemetryStore::new();
    println!(
        "streaming {} nodes x {} metrics at 1 Hz for {} minutes ...",
        nodes, METRIC_COUNT, minutes
    );

    let mut windows_total = 0usize;
    for minute in 0..minutes {
        // Generate one minute of frames per node.
        let mut frames_by_node = vec![Vec::with_capacity(60); nodes];
        for _ in 0..60 {
            let out = engine.step_opts(&StepOptions {
                frames: true,
                ..Default::default()
            });
            for f in out.frames.unwrap() {
                frames_by_node[f.node.index()].push(f);
            }
        }
        // Fan them in through the 288:1-style collector.
        let (collected, stats) = fan_in_batches(frames_by_node, 8);
        // Archive + coarsen per node.
        let mut by_node = vec![Vec::with_capacity(60); nodes];
        for f in collected {
            by_node[f.node.index()].push(f);
        }
        for (n, frames) in by_node.into_iter().enumerate() {
            // The store sorts internally; the aggregator reorders within
            // its lateness horizon.
            store.archive_partition(NodeId(n as u32), &frames);
            let mut agg = WindowAggregator::paper(NodeId(n as u32));
            for f in &frames {
                let _ = agg.push(f);
            }
            windows_total += agg.finish().len();
        }
        println!(
            "minute {}: {} frames in, mean delay {:.2} s (max {:.2}), {}/s metrics",
            minute,
            stats.frames,
            stats.mean_delay_s(),
            stats.max_delay_s,
            eng(stats.metrics_per_second()),
        );
    }

    let comp = store.compression_stats();
    println!(
        "\narchive: {} partitions, {} encoded ({}x compression, {:.3} B/reading)",
        store.partition_count(),
        eng(store.archive_bytes() as f64),
        comp.ratio().round(),
        comp.bytes_per_reading(),
    );
    println!("coarsened windows: {windows_total}");

    // Prove the archive is lossless: reload one partition and compare.
    let restored = store
        .load_partition(NodeId(0), 0.0)
        .expect("partition exists");
    println!(
        "lossless check: node0 partition restored with {} frames, first input_power = {:.0} W",
        restored.len(),
        restored[0].get(summit_repro::telemetry::catalog::input_power())
    );

    // Full-floor extrapolation (the paper's Table 2 anchors).
    let bytes_per_node_s = store.archive_bytes() as f64 / (nodes as f64 * minutes as f64 * 60.0);
    let full_floor = spec::TOTAL_NODES as f64;
    println!(
        "\nextrapolated to 4,626 nodes x 1 year: {:.2} TB (paper: 8.5 TB), {}/s ingest (paper: 460k)",
        bytes_per_node_s * full_floor * spec::YEAR_S / 1e12,
        eng(full_floor * METRIC_COUNT as f64),
    );
}
