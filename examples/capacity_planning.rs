//! Facility capacity planning: sweep central-energy-plant design
//! parameters against the simulated 2020 workload and compare annual PUE.
//!
//! This exercises the cross-cutting facility/IT interaction the paper's
//! future-work section motivates: "making the large power consumption
//! visible or deterministic enough to be predictable by the cooling plant
//! can open additional energy savings opportunities".
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::analysis::pue::average_pue;
use summit_repro::analysis::series::Series;
use summit_repro::core::pipeline::{cluster_power_sweep, PopulationScenario};
use summit_repro::core::report::Table;
use summit_repro::sim::facility::{Facility, FacilityConfig};
use summit_repro::sim::spec;
use summit_repro::sim::weather::Weather;

fn annual_pue(it: &Series, cfg: FacilityConfig) -> f64 {
    let weather = Weather::oak_ridge(2020);
    let dt = it.dt();
    let mut fac = Facility::new(cfg, it.values()[0]);
    let mut fac_series = Vec::with_capacity(it.len());
    for (i, &p) in it.values().iter().enumerate() {
        let t = i as f64 * dt;
        let rec = fac.step(t, p, weather.wet_bulb_c(t), dt);
        fac_series.push(rec.facility_power_w);
    }
    average_pue(&Series::new(0.0, dt, fac_series), it)
}

fn main() {
    // Build the year's IT power profile once (hourly resolution).
    let scale = 0.25;
    println!(
        "building the statistical year ({}% of 840k jobs) ...",
        scale * 100.0
    );
    let (rows, _) = PopulationScenario::paper_year(scale).generate_with_stats();
    let sweep = cluster_power_sweep(&rows, 0.0, spec::YEAR_S, 3600.0);
    let inflate = 1.0 / scale;
    let idle = spec::SYSTEM_IDLE_POWER_W;
    let cap = spec::TOTAL_NODES as f64 * spec::NODE_MAX_POWER_W;
    let it = Series::new(
        0.0,
        3600.0,
        sweep
            .values()
            .iter()
            .map(|&v| (idle + (v - idle) * inflate).min(cap) + 0.6e6)
            .collect(),
    );

    let baseline = FacilityConfig::default();
    let mut t = Table::new(
        "annual PUE under facility design variants",
        &["variant", "annual PUE", "delta vs baseline"],
    );
    let base_pue = annual_pue(&it, baseline);
    let mut row = |name: &str, cfg: FacilityConfig| {
        let p = annual_pue(&it, cfg);
        t.row(vec![
            name.into(),
            format!("{p:.4}"),
            format!("{:+.4}", p - base_pue),
        ]);
    };
    row("baseline (paper-calibrated)", baseline);
    row(
        "better chillers (COP 6.5)",
        FacilityConfig {
            chiller_cop: 6.5,
            ..baseline
        },
    );
    row(
        "worse tower approach (6 K)",
        FacilityConfig {
            tower_approach_k: 6.0,
            ..baseline
        },
    );
    row(
        "tighter tower approach (2.5 K)",
        FacilityConfig {
            tower_approach_k: 2.5,
            ..baseline
        },
    );
    row(
        "low-loss distribution (1%)",
        FacilityConfig {
            distribution_loss_fraction: 0.01,
            ..baseline
        },
    );
    row(
        "aggressive destaging (tau 60 s)",
        FacilityConfig {
            stage_down_tau_s: 60.0,
            ..baseline
        },
    );
    println!("{}", t.render());
    println!("paper anchor: annual PUE 1.11 with evaporative cooling ~80% of the year");
}
