//! GPU failure forensics: generate a synthetic XID error log and run the
//! paper's Section 6 analyses — composition, co-occurrence, placement and
//! thermal extremity.
//!
//! ```sh
//! cargo run --release --example failure_forensics
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use summit_repro::analysis::correlation::CorrelationMatrix;
use summit_repro::analysis::zscore::ExtremitySummary;
use summit_repro::core::report::{bar, pct, Table};
use summit_repro::sim::failures::{count_by_kind, max_node_share, node_count_matrix, FailureModel};
use summit_repro::sim::jobs::JobGenerator;
use summit_repro::sim::spec::TOTAL_NODES;
use summit_repro::telemetry::records::XidErrorKind;

fn main() {
    // Twelve weeks of paper-rate traffic.
    let weeks = 12.0;
    let span = weeks * 7.0 * 86_400.0;
    let mut rng = StdRng::seed_from_u64(42);
    let mut gen = JobGenerator::new();
    let n_jobs = (840_000.0 * span / summit_repro::sim::spec::YEAR_S) as usize;
    println!("generating {n_jobs} jobs over {weeks} weeks ...");
    let jobs = gen.generate_population(&mut rng, n_jobs, 0.0, span);
    let model = FailureModel::paper();
    let events = model.generate(&mut rng, &jobs, TOTAL_NODES, 0.0, span);
    println!("{} XID events generated\n", events.len());

    // Composition (Table 4 shape).
    let counts = count_by_kind(&events);
    let shares = max_node_share(&events, TOTAL_NODES);
    let mut t = Table::new("failure composition", &["kind", "count", "max/node", ""]);
    let max_count = *counts.iter().max().unwrap() as f64;
    for kind in XidErrorKind::ALL {
        if counts[kind.index()] == 0 {
            continue;
        }
        t.row(vec![
            kind.name().into(),
            counts[kind.index()].to_string(),
            pct(shares[kind.index()]),
            bar(
                (counts[kind.index()] as f64).ln().max(0.0),
                max_count.ln(),
                24,
            ),
        ]);
    }
    println!("{}", t.render());

    // Co-occurrence (Figure 13 shape).
    let matrix = node_count_matrix(&events, TOTAL_NODES);
    let corr = CorrelationMatrix::compute(&matrix, 0.05);
    println!("significant co-occurrences (Bonferroni 0.05):");
    for p in corr.significant_pairs().iter().take(8) {
        println!(
            "  r={:+.2}  {} x {}",
            p.r,
            XidErrorKind::ALL[p.i].name(),
            XidErrorKind::ALL[p.j].name()
        );
    }

    // Thermal extremity (Figure 15 shape).
    println!("\nthermal extremity by kind (z-scores):");
    for kind in [
        XidErrorKind::DoubleBitError,
        XidErrorKind::FallenOffTheBus,
        XidErrorKind::MemoryPageFault,
        XidErrorKind::GraphicsEngineFault,
    ] {
        let zs: Vec<f64> = events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.temp_zscore)
            .collect();
        if let Some(s) = ExtremitySummary::compute(&zs) {
            println!(
                "  {:<34} n={:<6} skew={:+.2} ({})",
                kind.name(),
                s.count,
                s.skewness,
                s.skew_label()
            );
        }
    }
    println!("\npaper: overheating is NOT a significant factor; cold-start kinds skew right");
}
