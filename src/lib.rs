//! # summit-repro
//!
//! A full-system reproduction of *"Revealing Power, Energy and Thermal
//! Dynamics of a 200PF Pre-Exascale Supercomputer"* (Shin, Oles, Karimi,
//! Ellis, Wang — SC '21): a digital twin of the Summit data center, the
//! out-of-band telemetry pipeline that instrumented it, the statistical
//! toolkit behind every analysis in the paper, and experiment drivers
//! that regenerate each table and figure.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`analysis`] | stats, KDE, FFT, edge detection, snapshots, correlation |
//! | [`telemetry`] | metric catalog, 1 Hz frames, fan-in, codec, coarsening |
//! | [`sim`] | node power/thermal models, facility, scheduler, failures |
//! | [`core`] | per-figure experiment drivers and terminal rendering |
//! | [`obs`] | self-observability: metric registry, spans, Prometheus text |
//!
//! ## Quickstart
//!
//! ```
//! use summit_repro::core::pipeline::quick_dynamics;
//!
//! // Simulate 6 cabinets (108 nodes) for 5 minutes with a staged burst.
//! let run = quick_dynamics(6, 300.0);
//! let power = run.power_series();
//! assert!(power.len() > 0);
//! let pue = run.pue_series();
//! assert!(pue.values().iter().all(|&p| !p.is_finite() || p > 1.0));
//! ```

pub use summit_analysis as analysis;
pub use summit_core as core;
pub use summit_obs as obs;
pub use summit_sim as sim;
pub use summit_telemetry as telemetry;

/// One-stop prelude re-exporting the most-used types of all crates.
pub mod prelude {
    pub use summit_analysis::prelude::*;
    pub use summit_core::prelude::*;
    // Explicit list: the obs `Histogram` handle would otherwise shadow
    // the statistical `analysis::histogram::Histogram`.
    pub use summit_obs::prelude::{
        parse_prometheus, span, write_csv, write_json, write_prometheus, Counter, Gauge,
        Histogram as ObsHistogram, Registry, Snapshot, SpanGuard,
    };
    pub use summit_sim::prelude::*;
    pub use summit_telemetry::prelude::*;
}
