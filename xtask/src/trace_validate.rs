//! `cargo xtask trace-validate` — structural checks on emitted traces.
//!
//! A `summit-trace/1` file (see DESIGN.md "Tracing model") is only
//! useful if Perfetto can load it and the duration tree is well formed,
//! so CI validates every trace it produces: the file must parse with
//! [`summit_core::json`] (the same dialect the writers target), carry
//! the schema tag, and hold a non-empty `traceEvents` array in which
//! every event has a legal phase and numeric `pid`/`tid`, every `B` is
//! closed by a matching same-name `E` on the same thread track, and at
//! least one `thread_name` metadata event names a track.
//!
//! Field checks match [`Json::Num`] explicitly rather than going
//! through `as_f64`, which deliberately maps `null` to `+inf` for the
//! figure readers — a `"ts": null` must fail here, not validate.

use std::fmt::Write as _;
use summit_core::json::Json;

/// The trace schema this validator accepts.
pub const TRACE_SCHEMA: &str = "summit-trace/1";

/// Phases the summit-trace writer emits (Chrome Trace Event format).
const PHASES: &[&str] = &["B", "E", "X", "i", "M", "C"];

/// Summary of a valid trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceReport {
    /// Events in the `traceEvents` array (metadata included).
    pub events: usize,
    /// Thread tracks named by `thread_name` metadata events.
    pub tracks: usize,
}

/// Extracts the numeric value of `key`, refusing `null`/string/bool.
fn num_field(event: &Json, key: &str) -> Option<f64> {
    match event.get(key) {
        Some(Json::Num(v)) => Some(*v),
        _ => None,
    }
}

/// Validates `text` as a `summit-trace/1` Chrome trace; returns the
/// event/track summary or every structural error found.
pub fn validate(text: &str) -> Result<TraceReport, Vec<String>> {
    let root = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };

    let mut errors: Vec<String> = Vec::new();
    match root.get("schema").and_then(Json::as_str) {
        Some(s) if s == TRACE_SCHEMA => {}
        Some(s) => errors.push(format!(
            "schema is {s:?}, expected {TRACE_SCHEMA:?} (regenerate the trace)"
        )),
        None => errors.push(format!("missing top-level \"schema\": {TRACE_SCHEMA:?}")),
    }

    let Some(events) = root.get("traceEvents").and_then(Json::as_arr) else {
        errors.push("missing top-level \"traceEvents\" array".into());
        return Err(errors);
    };
    if events.is_empty() {
        errors.push("\"traceEvents\" is empty: the trace recorded nothing".into());
    }

    // Per-tid stack of open `B` event names, keyed by (pid, tid) bits.
    let mut open: Vec<((u64, u64), Vec<String>)> = Vec::new();
    let mut tracks = 0usize;

    for (idx, event) in events.iter().enumerate() {
        if event.as_obj().is_none() {
            errors.push(format!("event #{idx}: not a JSON object"));
            continue;
        }
        let ph = match event.get("ph").and_then(Json::as_str) {
            Some(p) if PHASES.contains(&p) => p.to_owned(),
            Some(p) => {
                errors.push(format!("event #{idx}: unknown phase {p:?}"));
                continue;
            }
            None => {
                errors.push(format!("event #{idx}: missing \"ph\""));
                continue;
            }
        };
        let Some(name) = event.get("name").and_then(Json::as_str) else {
            errors.push(format!("event #{idx} (ph {ph}): \"name\" must be a string"));
            continue;
        };
        let (Some(pid), Some(tid)) = (num_field(event, "pid"), num_field(event, "tid")) else {
            errors.push(format!(
                "event #{idx} ({name:?}): \"pid\"/\"tid\" must be numbers"
            ));
            continue;
        };
        if ph != "M" {
            match num_field(event, "ts") {
                Some(ts) if ts >= 0.0 => {}
                _ => errors.push(format!(
                    "event #{idx} ({name:?}): \"ts\" must be a non-negative number"
                )),
            }
        }
        if ph == "X" && !num_field(event, "dur").is_some_and(|d| d >= 0.0) {
            errors.push(format!(
                "event #{idx} ({name:?}): complete event needs non-negative \"dur\""
            ));
        }
        if ph == "M" && name == "thread_name" {
            tracks += 1;
        }

        let key = (pid.to_bits(), tid.to_bits());
        match ph.as_str() {
            "B" => match open.iter_mut().find(|(k, _)| *k == key) {
                Some((_, stack)) => stack.push(name.to_owned()),
                None => open.push((key, vec![name.to_owned()])),
            },
            "E" => {
                let popped = open
                    .iter_mut()
                    .find(|(k, _)| *k == key)
                    .and_then(|(_, stack)| stack.pop());
                match popped {
                    Some(b) if b == name => {}
                    Some(b) => errors.push(format!(
                        "event #{idx}: E {name:?} closes B {b:?} on tid {tid} \
                         (span open/close names must match)"
                    )),
                    None => errors.push(format!(
                        "event #{idx}: E {name:?} on tid {tid} with no open B"
                    )),
                }
            }
            _ => {}
        }
    }

    for ((_, tid_bits), stack) in &open {
        for name in stack {
            errors.push(format!(
                "B {name:?} on tid {} is never closed by an E",
                f64::from_bits(*tid_bits)
            ));
        }
    }
    if tracks == 0 {
        errors
            .push("no \"thread_name\" metadata event: tracks would be unnamed in Perfetto".into());
    }

    if errors.is_empty() {
        Ok(TraceReport {
            events: events.len(),
            tracks,
        })
    } else {
        Err(errors)
    }
}

/// Renders a report the way the CLI prints it.
pub fn summary(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "trace ok: {} event(s), {} named track(s), B/E balanced per tid",
        report.events, report.tracks
    );
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn wrap(events: &str) -> String {
        format!(
            "{{\"schema\": \"summit-trace/1\", \"traceEvents\": [\n\
             {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, \
              \"args\": {{\"name\": \"main\"}}}},\n{events}\n]}}"
        )
    }

    #[test]
    fn balanced_trace_validates() {
        let text = wrap(
            "{\"name\": \"a\", \"ph\": \"B\", \"pid\": 1, \"tid\": 1, \"ts\": 0},\n\
             {\"name\": \"b\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": 1, \"dur\": 2},\n\
             {\"name\": \"a\", \"ph\": \"E\", \"pid\": 1, \"tid\": 1, \"ts\": 4}",
        );
        let report = validate(&text).unwrap();
        assert_eq!(
            report,
            TraceReport {
                events: 4,
                tracks: 1
            }
        );
        assert!(summary(&report).contains("4 event(s)"));
    }

    #[test]
    fn unbalanced_and_cross_track_begins_fail() {
        // E with no B on its tid, plus a B left open on another tid.
        let text = wrap(
            "{\"name\": \"a\", \"ph\": \"B\", \"pid\": 1, \"tid\": 7, \"ts\": 0},\n\
             {\"name\": \"a\", \"ph\": \"E\", \"pid\": 1, \"tid\": 8, \"ts\": 1}",
        );
        let errors = validate(&text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("no open B")));
        assert!(errors.iter().any(|e| e.contains("never closed")));
    }

    #[test]
    fn mismatched_close_name_fails() {
        let text = wrap(
            "{\"name\": \"a\", \"ph\": \"B\", \"pid\": 1, \"tid\": 1, \"ts\": 0},\n\
             {\"name\": \"z\", \"ph\": \"E\", \"pid\": 1, \"tid\": 1, \"ts\": 1}",
        );
        let errors = validate(&text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("must match")));
    }

    #[test]
    fn null_ts_and_wrong_schema_fail() {
        // `as_f64` would read `null` as +inf; the validator must not.
        let text = "{\"schema\": \"summit-trace/0\", \"traceEvents\": [\
                    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1},\
                    {\"name\": \"a\", \"ph\": \"i\", \"pid\": 1, \"tid\": 1, \"ts\": null}]}";
        let errors = validate(text).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| e.contains("expected \"summit-trace/1\"")));
        assert!(errors.iter().any(|e| e.contains("non-negative number")));
    }

    #[test]
    fn garbage_missing_array_and_unknown_phase_fail() {
        assert!(validate("not json").unwrap_err()[0].contains("not valid JSON"));
        let errors = validate("{\"schema\": \"summit-trace/1\"}").unwrap_err();
        assert!(errors.iter().any(|e| e.contains("traceEvents")));
        let text = wrap("{\"name\": \"a\", \"ph\": \"Q\", \"pid\": 1, \"tid\": 1, \"ts\": 0}");
        let errors = validate(&text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("unknown phase")));
    }

    #[test]
    fn missing_thread_name_fails() {
        let text = "{\"schema\": \"summit-trace/1\", \"traceEvents\": [\
                    {\"name\": \"a\", \"ph\": \"i\", \"pid\": 1, \"tid\": 1, \"ts\": 0}]}";
        let errors = validate(text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("thread_name")));
    }
}
