//! Minimal TOML-subset parser for `paper_constants.toml`.
//!
//! Supports exactly what that file needs: `[section]` / `[a.b]`
//! headers, `key = value` pairs with integer (underscore separators
//! allowed), float (including scientific notation), quoted-string and
//! boolean values, and `#` comments. Anything else is a parse error —
//! the constants file is repo-controlled, so failing loudly beats
//! guessing.

/// A parsed scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer literal (underscores stripped).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string (no escape processing).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
}

impl Value {
    /// Numeric view of the value, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Whether the value is numerically an integer (e.g. `13.0e6`).
    pub fn is_integral(&self) -> bool {
        match self.as_f64() {
            Some(f) => f.fract() == 0.0 && f.is_finite(),
            None => false,
        }
    }
}

/// One `key = value` pair with its section and source line.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Dotted section name (`""` for top level).
    pub section: String,
    /// Key within the section.
    pub key: String,
    /// Parsed value.
    pub value: Value,
    /// 1-based source line.
    pub line: usize,
}

/// Parses the TOML subset; returns entries in file order.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut section = String::new();
    let mut entries = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(format!("line {lineno}: unterminated section header"));
            };
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
            {
                return Err(format!("line {lineno}: bad section name `{name}`"));
            }
            section = name.to_string();
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`"));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {lineno}: bad key `{key}`"));
        }
        let value = parse_value(val.trim())
            .ok_or_else(|| format!("line {lineno}: cannot parse value `{}`", val.trim()))?;
        entries.push(Entry {
            section: section.clone(),
            key: key.to_string(),
            value,
            line: lineno,
        });
    }
    Ok(entries)
}

/// Removes a `#` comment, respecting a possible quoted string before it.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str) -> Option<Value> {
    match s {
        "true" => return Some(Value::Bool(true)),
        "false" => return Some(Value::Bool(false)),
        _ => {}
    }
    if let Some(body) = s.strip_prefix('"') {
        return body.strip_suffix('"').map(|b| Value::Str(b.to_string()));
    }
    let cleaned: String = s.chars().filter(|&c| c != '_').collect();
    if cleaned.contains(['.', 'e', 'E'])
        && !cleaned.starts_with("0x")
        && cleaned.parse::<f64>().is_ok()
    {
        return cleaned.parse::<f64>().ok().map(Value::Float);
    }
    if let Ok(i) = cleaned.parse::<i64>() {
        return Some(Value::Int(i));
    }
    cleaned.parse::<f64>().ok().map(Value::Float)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn parses_sections_keys_and_values() {
        let text = "\
# header comment
top = 1
[system]
total_nodes = 4_626   # paper Table 1
peak_w = 13.0e6
name = \"summit\"
leap = true
[schedule.class1]
min_nodes = 2765
";
        let entries = parse(text).expect("parse");
        assert_eq!(entries.len(), 6);
        assert_eq!(entries[0].section, "");
        assert_eq!(entries[0].value, Value::Int(1));
        assert_eq!(entries[1].section, "system");
        assert_eq!(entries[1].key, "total_nodes");
        assert_eq!(entries[1].value, Value::Int(4626));
        assert_eq!(entries[2].value, Value::Float(13.0e6));
        assert!(entries[2].value.is_integral());
        assert_eq!(entries[3].value, Value::Str("summit".into()));
        assert_eq!(entries[4].value, Value::Bool(true));
        assert_eq!(entries[5].section, "schedule.class1");
        assert_eq!(entries[5].line, 9);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("[unclosed\n").is_err());
        assert!(parse("key value\n").is_err());
        assert!(parse("key = what is this\n").is_err());
    }
}
