//! `cargo xtask` — repo-specific developer tooling.
//!
//! `lint` is a custom static-analysis pass built on a dependency-free
//! lexer + item-level AST-lite (`xtask::lex`, `xtask::ast`), enforcing
//! nine invariants the compiler cannot check:
//!
//! 1. **determinism** — no wall-clock or entropy-seeded randomness in
//!    the simulation/analysis crates that feed experiment outputs;
//! 2. **panic-freedom** — no `unwrap()`/`expect()`/bare `panic!` in
//!    non-test library code outside a ratcheted allowlist, and
//!    `assert!`/`assert_eq!`/`assert_ne!` sites held to a second
//!    ratcheted budget (`debug_assert!` stays free);
//! 3. **spec-constants** — `crates/sim/src/spec.rs` matches the
//!    machine-readable `paper_constants.toml` (paper Tables 1/3), and
//!    no spec value is duplicated as a magic literal elsewhere;
//! 4. **registry** — every experiment module is declared in
//!    `experiments/mod.rs`, implements the `Experiment` trait, and is
//!    entered in the static `REGISTRY` that the unified `experiments`
//!    driver and the registry-iterating smoke test run;
//! 5. **obs-coverage** — every public `run_*` entry point in
//!    `core::pipeline` and every experiment module opens at least one
//!    `summit_obs` span, so new stages cannot silently skip the
//!    self-observability layer; and every public `write_*` exporter in
//!    `obs::trace` references `TRACE_SCHEMA`, so each trace output is
//!    schema-tagged (`summit-trace/1`);
//! 6. **parallelism** — no direct `std::thread::spawn`/`scope`/
//!    `Builder` in library crates: all data-parallelism goes through
//!    the deterministic `compat/rayon` pool so it honors
//!    `SUMMIT_THREADS` and the bit-reproducibility contract;
//! 7. **hash-order** — no order-sensitive iteration over
//!    `HashMap`/`HashSet` in the data-path crates (unsorted hash
//!    iteration order can leak into figure outputs);
//! 8. **float-reduction** — no non-associative float reductions
//!    (`.sum::<f64>()`, float-accumulator `fold`/`reduce`) inside
//!    parallel pipelines outside the facade's exact merge tree;
//! 9. **lossy-cast** — no unreviewed narrowing `as` casts in
//!    `crates/{telemetry,analysis}`; checked conversions or a
//!    ratcheted budget.
//!
//! `ratchet` compares every `xtask/*_allowlist.txt` total against the
//! committed `xtask/ratchet_baseline.txt` so allowlist debt can only
//! shrink.
//!
//! `trace-validate <path>` parses an emitted `summit-trace/1` Chrome
//! trace with the repo's own `core::json` reader and checks the event
//! structure — legal phases, numeric `pid`/`tid`/`ts`, per-tid B/E
//! span balance, named thread tracks — so CI catches a malformed trace
//! before a human ever loads it in Perfetto.
//!
//! Exit codes: 0 clean, 1 violations found, 2 internal lint error
//! (unreadable workspace, malformed allowlist/baseline, bad usage).
//!
//! Run as `cargo xtask lint` (see `.cargo/config.toml` for the alias).

use std::process::ExitCode;
use std::time::Instant;
use xtask::violation::Violation;
use xtask::{json_report, ratchet, rules, workspace};

const USAGE: &str = "\
usage: cargo xtask lint [--rule <name>]... [--strict-indexing] [--json]
       cargo xtask ratchet
       cargo xtask trace-validate <trace.json>
       cargo xtask bench-compare <baseline.json> <fresh.json>

rules: determinism | panic-freedom | spec-constants | registry | obs-coverage
       | parallelism | hash-order | float-reduction | lossy-cast
       (default: all nine)

--strict-indexing  also fail on literal slice indexing (`xs[0]`) in
                   non-test library code; advisory warnings otherwise
--json             write BENCH_lint.json (summit-lint/1: per-rule counts,
                   per-rule wall time, allowlist-debt totals)

ratchet            fail when any xtask/*_allowlist.txt total grows (or
                   silently shrinks) relative to xtask/ratchet_baseline.txt

trace-validate     parse a summit-trace/1 Chrome trace with core::json and
                   check phases, pid/tid/ts fields, per-tid B/E balance and
                   thread_name track metadata

bench-compare      diff a fresh summit-perf/3 BENCH_perf.json against the
                   committed baseline on dimensionless per-stage speedups:
                   fail any stage regressing >10%, skip sub-noise-floor
                   stages, tolerate a skipped gate (one-core host)

exit codes: 0 clean · 1 violations · 2 internal lint error
";

/// Exit code for internal lint failures (distinct from violations).
const EXIT_INTERNAL: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("lint") => {}
        Some("ratchet") => return run_ratchet(),
        Some("trace-validate") => return run_trace_validate(iter.next().map(String::as_str)),
        Some("bench-compare") => {
            let baseline = iter.next().map(String::as_str);
            let fresh = iter.next().map(String::as_str);
            return run_bench_compare(baseline, fresh);
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    }

    let mut selected: Vec<String> = Vec::new();
    let mut strict_indexing = false;
    let mut json = false;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--rule" => match iter.next() {
                Some(name) => selected.push(name.clone()),
                None => {
                    eprintln!("--rule requires a value\n{USAGE}");
                    return ExitCode::from(EXIT_INTERNAL);
                }
            },
            "--strict-indexing" => strict_indexing = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(EXIT_INTERNAL);
            }
        }
    }

    let root = match workspace::workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: cannot locate workspace root: {e}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };

    let run = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    let mut stats: Vec<json_report::RuleStat> = Vec::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut warnings: Vec<Violation> = Vec::new();

    // Each entry runs one rule and returns `(errors, warnings)`.
    type RuleFn<'a> = Box<dyn Fn() -> (Vec<Violation>, Vec<Violation>) + 'a>;
    let rules_table: Vec<(&'static str, RuleFn)> = vec![
        (
            "determinism",
            Box::new(|| (rules::determinism::check(&root), Vec::new())),
        ),
        (
            "panic-freedom",
            Box::new(|| rules::panic_freedom::check(&root, strict_indexing)),
        ),
        (
            "spec-constants",
            Box::new(|| (rules::spec_constants::check(&root), Vec::new())),
        ),
        (
            "registry",
            Box::new(|| (rules::registry::check(&root), Vec::new())),
        ),
        (
            "obs-coverage",
            Box::new(|| (rules::obs_coverage::check(&root), Vec::new())),
        ),
        (
            "parallelism",
            Box::new(|| (rules::parallelism::check(&root), Vec::new())),
        ),
        (
            "hash-order",
            Box::new(|| (rules::hash_order::check(&root), Vec::new())),
        ),
        (
            "float-reduction",
            Box::new(|| (rules::float_reduction::check(&root), Vec::new())),
        ),
        (
            "lossy-cast",
            Box::new(|| (rules::lossy_cast::check(&root), Vec::new())),
        ),
    ];

    let known: Vec<&str> = rules_table.iter().map(|(n, _)| *n).collect();
    if let Some(bad) = selected.iter().find(|s| !known.contains(&s.as_str())) {
        eprintln!("unknown rule `{bad}`\n{USAGE}");
        return ExitCode::from(EXIT_INTERNAL);
    }

    for (name, check) in &rules_table {
        if !run(name) {
            continue;
        }
        let start = Instant::now();
        let (errs, warns) = check();
        stats.push(json_report::RuleStat {
            name,
            violations: errs.len(),
            warnings: warns.len(),
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        });
        violations.extend(errs);
        warnings.extend(warns);
    }

    violations.sort();
    warnings.sort();
    for w in &warnings {
        println!("warning: {w}");
    }
    for v in &violations {
        println!("error: {v}");
    }

    println!("rule timings:");
    for s in &stats {
        println!(
            "  {:<16} {:>3} violation(s) {:>3} warning(s) {:>9.3} ms",
            s.name, s.violations, s.warnings, s.wall_ms
        );
    }

    let debts = match json_report::allowlist_debt(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask lint: cannot total allowlist debt: {e}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };
    if json {
        match json_report::write(&root, &stats, &debts) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("xtask lint: cannot write BENCH_lint.json: {e}");
                return ExitCode::from(EXIT_INTERNAL);
            }
        }
    }

    let internal = violations.iter().any(|v| v.internal);
    if internal {
        println!("xtask lint: internal lint error");
        ExitCode::from(EXIT_INTERNAL)
    } else if violations.is_empty() {
        println!(
            "xtask lint: clean ({} advisory warning{})",
            warnings.len(),
            if warnings.len() == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// `cargo xtask trace-validate <path>` — the trace-structure gate.
fn run_trace_validate(path: Option<&str>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("trace-validate requires a trace path\n{USAGE}");
        return ExitCode::from(EXIT_INTERNAL);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask trace-validate: cannot read {path}: {e}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };
    match xtask::trace_validate::validate(&text) {
        Ok(report) => {
            println!(
                "xtask trace-validate: {path}: {}",
                xtask::trace_validate::summary(&report)
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                println!("error: [trace] {path}: {e}");
            }
            println!("xtask trace-validate: {} error(s)", errors.len());
            ExitCode::FAILURE
        }
    }
}

/// `cargo xtask bench-compare` — the per-stage perf-regression gate.
fn run_bench_compare(baseline: Option<&str>, fresh: Option<&str>) -> ExitCode {
    let (Some(baseline), Some(fresh)) = (baseline, fresh) else {
        eprintln!("bench-compare requires <baseline.json> <fresh.json>\n{USAGE}");
        return ExitCode::from(EXIT_INTERNAL);
    };
    let read = |path: &str| -> Result<String, ExitCode> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("xtask bench-compare: cannot read {path}: {e}");
            ExitCode::from(EXIT_INTERNAL)
        })
    };
    let base_text = match read(baseline) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let fresh_text = match read(fresh) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match xtask::bench_compare::compare(&base_text, &fresh_text) {
        Ok(report) => {
            println!(
                "xtask bench-compare: {baseline} vs {fresh}: {}",
                xtask::bench_compare::summary(&report)
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                println!("error: [bench-compare] {e}");
            }
            println!("xtask bench-compare: {} error(s)", errors.len());
            ExitCode::FAILURE
        }
    }
}

/// `cargo xtask ratchet` — the allowlist-growth gate.
fn run_ratchet() -> ExitCode {
    let root = match workspace::workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: cannot locate workspace root: {e}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };
    match ratchet::check(&root) {
        Ok(errors) if errors.is_empty() => {
            println!("xtask ratchet: allowlist totals match the baseline");
            ExitCode::SUCCESS
        }
        Ok(errors) => {
            for e in &errors {
                println!("error: [ratchet] {e}");
            }
            println!("xtask ratchet: {} mismatch(es)", errors.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask ratchet: {e}");
            ExitCode::from(EXIT_INTERNAL)
        }
    }
}
