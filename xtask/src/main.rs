//! `cargo xtask` — repo-specific developer tooling.
//!
//! The only subcommand today is `lint`, a custom static-analysis pass
//! enforcing six invariants the compiler cannot check:
//!
//! 1. **determinism** — no wall-clock or entropy-seeded randomness in
//!    the simulation/analysis crates that feed experiment outputs;
//! 2. **panic-freedom** — no `unwrap()`/`expect()`/bare `panic!` in
//!    non-test library code outside a ratcheted allowlist, and
//!    `assert!`/`assert_eq!`/`assert_ne!` sites held to a second
//!    ratcheted budget (`debug_assert!` stays free);
//! 3. **spec-constants** — `crates/sim/src/spec.rs` matches the
//!    machine-readable `paper_constants.toml` (paper Tables 1/3), and
//!    no spec value is duplicated as a magic literal elsewhere;
//! 4. **registry** — every experiment module is declared in
//!    `experiments/mod.rs`, implements the `Experiment` trait, and is
//!    entered in the static `REGISTRY` that the unified `experiments`
//!    driver and the registry-iterating smoke test run;
//! 5. **obs-coverage** — every public `run_*` entry point in
//!    `core::pipeline` and every experiment module opens at least one
//!    `summit_obs` span, so new stages cannot silently skip the
//!    self-observability layer;
//! 6. **parallelism** — no direct `std::thread::spawn`/`scope`/
//!    `Builder` in library crates outside a ratcheted allowlist: all
//!    data-parallelism goes through the deterministic `compat/rayon`
//!    pool so it honors `SUMMIT_THREADS` and the bit-reproducibility
//!    contract.
//!
//! Run as `cargo xtask lint` (see `.cargo/config.toml` for the alias).

use std::process::ExitCode;
use xtask::violation::Violation;
use xtask::{rules, workspace};

const USAGE: &str = "\
usage: cargo xtask lint [--rule <name>]... [--strict-indexing]

rules: determinism | panic-freedom | spec-constants | registry | obs-coverage
       | parallelism   (default: all six)

--strict-indexing  also fail on literal slice indexing (`xs[0]`) in
                   non-test library code; advisory warnings otherwise
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("lint") => {}
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    let mut selected: Vec<String> = Vec::new();
    let mut strict_indexing = false;
    let mut iter = iter.peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--rule" => match iter.next() {
                Some(name) => selected.push(name.clone()),
                None => {
                    eprintln!("--rule requires a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--strict-indexing" => strict_indexing = true,
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = match workspace::workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: cannot locate workspace root: {e}");
            return ExitCode::FAILURE;
        }
    };

    let run = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    let mut violations: Vec<Violation> = Vec::new();
    let mut warnings: Vec<Violation> = Vec::new();

    if run("determinism") {
        violations.extend(rules::determinism::check(&root));
    }
    if run("panic-freedom") {
        let (errs, warns) = rules::panic_freedom::check(&root, strict_indexing);
        violations.extend(errs);
        warnings.extend(warns);
    }
    if run("spec-constants") {
        violations.extend(rules::spec_constants::check(&root));
    }
    if run("registry") {
        violations.extend(rules::registry::check(&root));
    }
    if run("obs-coverage") {
        violations.extend(rules::obs_coverage::check(&root));
    }
    if run("parallelism") {
        violations.extend(rules::parallelism::check(&root));
    }

    violations.sort();
    warnings.sort();
    for w in &warnings {
        println!("warning: {w}");
    }
    for v in &violations {
        println!("error: {v}");
    }
    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} advisory warning{})",
            warnings.len(),
            if warnings.len() == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
