//! Lightweight Rust-source preprocessing shared by the lint rules.
//!
//! The rules work on *masked* source text: the scanner below replaces
//! the contents of comments and string literals with spaces (preserving
//! byte offsets and line structure exactly), so substring searches
//! cannot fire inside prose or data. A second pass can additionally
//! mask `#[cfg(test)]` items so rules only see shipping library code.
//!
//! This is deliberately not a full parser: it understands line/block
//! comments (nested), `"…"` strings with escapes, raw strings
//! (`r"…"`, `r#"…"#`, any hash depth), byte/char literals well enough
//! for masking, and brace matching for item bodies. That is sufficient
//! for token-level rules and keeps xtask dependency-free.

/// Replaces comment and string-literal *contents* with spaces.
///
/// Newlines are preserved everywhere so line numbers in findings match
/// the original file. Delimiters themselves (`//`, quotes) are also
/// masked — rules never need them.
pub fn mask_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut i = 0;
    let n = b.len();

    let mask = |c: char| if c == '\n' { '\n' } else { ' ' };

    while i < n {
        let c = b[i];
        // Line comment (also covers doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(mask(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"…" / r#"…"# / byte-raw br"…".
        let raw_start = if c == 'r' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') {
            Some(i + 1)
        } else if c == 'b' && i + 2 < n && b[i + 1] == 'r' && (b[i + 2] == '"' || b[i + 2] == '#') {
            Some(i + 2)
        } else {
            None
        };
        // Only treat as a raw string when `r`/`br` is not part of a
        // longer identifier (e.g. `for`, `var#`).
        let prev_ident = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
        if let (Some(mut j), false) = (raw_start, prev_ident) {
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                // Mask from i through the closing quote + hashes.
                let closing: String = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                let rest: String = b[j + 1..].iter().collect();
                let end_rel = rest.find(&closing);
                let end = match end_rel {
                    Some(k) => j + 1 + rest[..k].chars().count() + closing.chars().count(),
                    None => n,
                };
                while i < end.min(n) {
                    out.push(mask(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string / byte string.
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(mask(b[i + 1]));
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                out.push(mask(b[i]));
                i += 1;
            }
            continue;
        }
        // Char literal — only when it cannot be a lifetime. `'a'` is a
        // char; `'a` followed by non-quote is a lifetime and passes
        // through. Escapes: '\n', '\''.
        if c == '\'' && i + 1 < n {
            let is_escape = b[i + 1] == '\\';
            let closes_simple = i + 2 < n && b[i + 2] == '\'';
            if is_escape || closes_simple {
                out.push(' ');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        out.push(' ');
                        out.push(mask(b[i + 1]));
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(mask(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

/// Masks the bodies of `#[cfg(test)]` items (modules or functions) in
/// already-masked source, so rules only see non-test code.
///
/// Line structure is preserved. Call on the output of
/// [`mask_comments_and_strings`].
pub fn mask_cfg_test_items(masked: &str) -> String {
    const MARKER: &str = "#[cfg(test)]";
    let mut result: Vec<char> = masked.chars().collect();
    let chars: Vec<char> = masked.chars().collect();
    let mut search_from = 0;

    loop {
        let hay: String = chars[search_from..].iter().collect();
        let Some(rel_pos) = hay.find(MARKER) else {
            break;
        };
        let start = search_from + hay[..rel_pos].chars().count();
        // Find the first `{` after the marker and mask through its
        // matching `}`.
        let mut i = start + MARKER.chars().count();
        let n = chars.len();
        while i < n && chars[i] != '{' && chars[i] != ';' {
            i += 1;
        }
        if i >= n || chars[i] == ';' {
            // `#[cfg(test)] use …;` — nothing to mask.
            search_from = i.min(n);
            continue;
        }
        let mut depth = 0usize;
        let body_start = i;
        while i < n {
            match chars[i] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        for (k, slot) in result
            .iter_mut()
            .enumerate()
            .take(i.min(n))
            .skip(body_start)
        {
            if chars[k] != '\n' {
                *slot = ' ';
            }
        }
        search_from = i.min(n);
    }
    result.into_iter().collect()
}

/// 1-based line number of a character offset in `text`.
pub fn line_of(text: &str, offset: usize) -> usize {
    text.chars().take(offset).filter(|&c| c == '\n').count() + 1
}

/// Finds every occurrence of `needle` in `haystack` (masked source),
/// returning 1-based line numbers. `word_start` additionally requires
/// the preceding character not be part of an identifier, so `panic!(`
/// does not match `dont_panic!(`.
pub fn find_token_lines(haystack: &str, needle: &str, word_start: bool) -> Vec<usize> {
    let mut lines = Vec::new();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let abs = from + pos;
        let ok = if word_start {
            abs == 0
                || haystack[..abs]
                    .chars()
                    .next_back()
                    .is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
        } else {
            true
        };
        if ok {
            lines.push(line_of(haystack, haystack[..abs].chars().count()));
        }
        from = abs + needle.len();
    }
    lines
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let src = "let x = 1; // unwrap() here\n/* panic!( */ let y = 2;";
        let m = mask_comments_and_strings(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(src.lines().count(), m.lines().count());
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still */ let z = 3;";
        let m = mask_comments_and_strings(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let z = 3;"));
    }

    #[test]
    fn masks_strings_and_raw_strings() {
        let src = r###"let s = "call .unwrap() now"; let r = r#"panic!("x")"#; s.len();"###;
        let m = mask_comments_and_strings(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("s.len();"));
    }

    #[test]
    fn preserves_lifetimes_but_masks_chars() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let m = mask_comments_and_strings(src);
        assert!(m.contains("<'a>"), "lifetime mangled: {m}");
        assert!(!m.contains("'x'"));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let src = r"let q = '\''; let after = 1;";
        let m = mask_comments_and_strings(src);
        assert!(m.contains("let after = 1;"));
    }

    #[test]
    fn masks_cfg_test_modules() {
        let src = "\
pub fn shipping() { inner(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
pub fn also_shipping() {}
";
        let m = mask_cfg_test_items(&mask_comments_and_strings(src));
        assert!(!m.contains("unwrap"));
        assert!(m.contains("shipping"));
        assert!(m.contains("also_shipping"));
        assert_eq!(src.lines().count(), m.lines().count());
    }

    #[test]
    fn token_lines_respect_word_boundaries() {
        let hay = "a\ndont_panic!(x)\npanic!(y)\n";
        assert_eq!(find_token_lines(hay, "panic!(", true), vec![3]);
        assert_eq!(find_token_lines(hay, "panic!(", false), vec![2, 3]);
    }
}
