//! Rule: no non-associative float reductions inside parallel pipelines.
//!
//! The compat/rayon facade guarantees bit-identical results across any
//! thread count by combining per-chunk accumulators in a fixed chunk
//! order — but only for reductions expressed through its exact merge
//! tree. A bare `.sum::<f64>()`, or a `fold`/`reduce` carrying a float
//! accumulator, re-associates additions differently per grouping and
//! breaks the PR 5 determinism contract the moment chunking changes.
//!
//! The rule lexes each file, finds every `.par_iter()` /
//! `.into_par_iter()` chain, and walks its links until the pipeline
//! goes sequential (`collect`, `count`):
//! - `sum` with a `f32`/`f64` turbofish (or none, where inference can
//!   pick a float) is an error — use `sum_stable()` from the facade;
//! - `fold` / `reduce` whose arguments mention `f32`/`f64` or contain a
//!   float literal is an error — move the merge into an approved
//!   exact-merge-tree helper;
//! - `sum_stable` is the approved spelling and passes.
//!
//! There is no allowlist: a nondeterministic parallel reduction is
//! never grandfatherable, it is a bug.
//!
//! Scope: non-test code in every `crates/*/src` tree (compat/rayon
//! itself is the approved implementation and lives outside `crates/`).

use crate::ast;
use crate::lex::{self, Tok};
use crate::source;
use crate::violation::Violation;
use crate::workspace::{rel, rust_files};
use std::path::Path;

const RULE: &str = "float-reduction";

/// Chain entry points into parallel iteration.
const PAR_ENTRIES: &[&str] = &["par_iter", "into_par_iter"];

/// Links after which the pipeline is sequential again.
const SEQUENTIAL_AFTER: &[&str] = &["collect", "count"];

/// Runs the rule over `root` and returns every finding.
pub fn check(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        out.push(Violation::internal(
            RULE,
            "crates",
            0,
            "missing crates/ directory",
        ));
        return out;
    };
    let mut crate_srcs: Vec<_> = entries
        .flatten()
        .map(|e| e.path().join("src"))
        .filter(|p| p.is_dir())
        .collect();
    crate_srcs.sort();

    for src_dir in crate_srcs {
        for file in rust_files(&src_dir) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                out.push(Violation::internal(
                    RULE,
                    rel(root, &file),
                    0,
                    "unreadable file",
                ));
                continue;
            };
            let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
            let toks = lex::lex(&masked);
            for (line, msg) in file_sites(&toks) {
                out.push(Violation::new(RULE, rel(root, &file), line, msg));
            }
        }
    }
    out
}

/// All float-reduction sites in one file: `(line, message)`.
fn file_sites(toks: &[Tok]) -> Vec<(usize, String)> {
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        // A parallel entry is always a method call: `.par_iter()`.
        if !(PAR_ENTRIES.iter().any(|m| toks[i].is_ident(m)) && i > 0 && toks[i - 1].is_punct('.'))
        {
            continue;
        }
        let links = ast::chain_at(toks, i - 1);
        for link in &links {
            if SEQUENTIAL_AFTER.contains(&link.name.as_str()) {
                break;
            }
            match link.name.as_str() {
                "sum" => {
                    let tf = link.turbofish.clone();
                    let float_tf = lex::range_has_ident(toks, tf.clone(), "f32")
                        || lex::range_has_ident(toks, tf.clone(), "f64");
                    if float_tf || tf.is_empty() {
                        sites.push((
                            link.line,
                            "float `sum()` in a parallel pipeline re-associates additions; \
                             use `sum_stable()` (compat/rayon exact merge tree)"
                                .to_string(),
                        ));
                    }
                }
                "fold" | "reduce" => {
                    let args = link.args.clone();
                    let float_args = lex::range_has_ident(toks, args.clone(), "f32")
                        || lex::range_has_ident(toks, args.clone(), "f64")
                        || toks[args.start.min(toks.len())..args.end.min(toks.len())]
                            .iter()
                            .any(Tok::is_float_literal);
                    if float_args {
                        sites.push((
                            link.line,
                            format!(
                                "float-accumulator `{}()` in a parallel pipeline; move the \
                                 merge into an exact-merge-tree helper (`sum_stable()`), or \
                                 accumulate integers/fixed-point",
                                link.name
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    sites.sort();
    sites.dedup();
    sites
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::lex::lex;
    use crate::source::mask_comments_and_strings;

    fn sites(src: &str) -> Vec<(usize, String)> {
        file_sites(&lex(&mask_comments_and_strings(src)))
    }

    #[test]
    fn flags_par_float_sum() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|x| x * 2.0).sum::<f64>() }";
        let s = sites(src);
        assert_eq!(s.len(), 1);
        assert!(s[0].1.contains("sum_stable"));
    }

    #[test]
    fn flags_untyped_par_sum() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.par_iter().copied().sum() }";
        assert_eq!(sites(src).len(), 1);
    }

    #[test]
    fn integer_par_sum_is_clean() {
        let src = "fn f(xs: &[u64]) -> u64 { xs.par_iter().copied().sum::<u64>() }";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn flags_float_fold_in_par_chain() {
        let src = "fn f(xs: &[f64]) -> Vec<f64> {\n xs.par_iter().fold(|| 0.0f64, |a, x| a + x).collect() }";
        let s = sites(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, 2);
    }

    #[test]
    fn sequential_sum_after_collect_is_clean() {
        let src = "fn f(xs: &[f64]) -> f64 {\n let v: Vec<f64> = xs.par_iter().map(|x| x + 1.0).collect();\n v.iter().sum::<f64>() }";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn sum_stable_is_approved() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|&x| x).sum_stable() }";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn sequential_float_sum_is_clean() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn integer_fold_in_par_chain_is_clean() {
        let src = "fn f(xs: &[u64]) -> Vec<u64> {\n xs.par_iter().fold(|| 0u64, |a, x| a + x).collect() }";
        assert!(sites(src).is_empty());
    }
}
