//! Rule: the observability layer instruments every pipeline entry point.
//!
//! The self-observability contract (DESIGN.md "Observability") is that
//! each pipeline path times itself: a stage that records no span is
//! invisible in `BENCH_obs.json` and the stage-timing table, and the
//! regression silently widens as the code grows. This rule requires:
//!
//! 1. every `pub fn run_*` entry point in `crates/core/src/pipeline.rs`
//!    to create at least one obs span in its body;
//! 2. every experiment module under `crates/core/src/experiments/` to
//!    create at least one obs span (`registry.rs` is exempt — it is
//!    dispatch plumbing, not a pipeline stage; the modules it routes
//!    to open their own spans);
//! 3. every public `write_*` exporter in `crates/obs/src/trace.rs` to
//!    reference the `TRACE_SCHEMA` constant, so each trace format a
//!    tool can ingest is tagged with the `summit-trace/1` schema and
//!    `cargo xtask trace-validate` can reject stale files.
//!
//! Entry points are recovered with [`ast::fn_items`], so a span in one
//! fn never covers its neighbour; span creation matches the token
//! sequences `summit_obs::span(` and `obs::span(` (the conventional
//! `use summit_obs as obs;` alias) exactly — an identifier that merely
//! *ends* in `obs` does not count. The schema check matches the ident
//! token `TRACE_SCHEMA` (strings are masked before lexing, so writers
//! must pass the constant, not respell the literal).

use crate::ast;
use crate::lex::{self, Tok};
use crate::source;
use crate::violation::Violation;
use std::path::Path;

const RULE: &str = "obs-coverage";

/// Pipeline module whose public `run_*` entry points must open spans.
pub const PIPELINE_FILE: &str = "crates/core/src/pipeline.rs";
/// Experiment modules directory; every module must open a span.
pub const EXPERIMENTS_DIR: &str = "crates/core/src/experiments";
/// Trace module whose public `write_*` exporters must tag the schema.
pub const TRACE_FILE: &str = "crates/obs/src/trace.rs";
/// Schema constant every trace exporter must reference.
const TRACE_SCHEMA_IDENT: &str = "TRACE_SCHEMA";
/// Accepted span-creating path heads (`<head>::span(`).
const SPAN_HEADS: &[&str] = &["summit_obs", "obs"];

/// True when `range` contains a `summit_obs::span(` / `obs::span(`
/// call as exact tokens.
fn range_has_span(toks: &[Tok], range: std::ops::Range<usize>) -> bool {
    let end = range.end.min(toks.len());
    for i in range.start..end {
        if !SPAN_HEADS.iter().any(|h| toks[i].is_ident(h)) {
            continue;
        }
        let call = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("span"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('));
        if call && i + 4 < end {
            return true;
        }
    }
    false
}

/// True when `range` contains `ident` as an exact identifier token.
fn range_has_ident(toks: &[Tok], range: std::ops::Range<usize>, ident: &str) -> bool {
    let end = range.end.min(toks.len());
    toks[range.start..end].iter().any(|t| t.is_ident(ident))
}

/// Runs the rule over `root` and returns every finding.
pub fn check(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();

    match std::fs::read_to_string(root.join(PIPELINE_FILE)) {
        Ok(text) => {
            let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
            let toks = lex::lex(&masked);
            for item in ast::fn_items(&toks) {
                if !(item.is_pub && item.name.starts_with("run_")) || item.body.is_empty() {
                    continue;
                }
                if !range_has_span(&toks, item.body.clone()) {
                    let name = &item.name;
                    out.push(Violation::new(
                        RULE,
                        PIPELINE_FILE,
                        item.line,
                        format!(
                            "pipeline entry point `{name}` opens no obs span \
                             (add `let _obs = summit_obs::span(\"summit_core_{name}\");`)"
                        ),
                    ));
                }
            }
        }
        Err(e) => {
            out.push(Violation::internal(
                RULE,
                PIPELINE_FILE,
                0,
                format!("cannot read: {e}"),
            ));
        }
    }

    match std::fs::read_to_string(root.join(TRACE_FILE)) {
        Ok(text) => {
            let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
            let toks = lex::lex(&masked);
            for item in ast::fn_items(&toks) {
                if !(item.is_pub && item.name.starts_with("write_")) || item.body.is_empty() {
                    continue;
                }
                if !range_has_ident(&toks, item.body.clone(), TRACE_SCHEMA_IDENT) {
                    let name = &item.name;
                    out.push(Violation::new(
                        RULE,
                        TRACE_FILE,
                        item.line,
                        format!(
                            "trace exporter `{name}` never references `TRACE_SCHEMA` \
                             (every exporter must tag its output with the \
                             summit-trace schema so stale files are rejectable)"
                        ),
                    ));
                }
            }
        }
        Err(e) => {
            out.push(Violation::internal(
                RULE,
                TRACE_FILE,
                0,
                format!("cannot read: {e}"),
            ));
        }
    }

    let dir = root.join(EXPERIMENTS_DIR);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        out.push(Violation::internal(
            RULE,
            EXPERIMENTS_DIR,
            0,
            "missing experiments directory",
        ));
        return out;
    };
    let mut files: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            (name.ends_with(".rs") && name != "mod.rs" && name != "registry.rs").then_some(name)
        })
        .collect();
    files.sort();
    for file in &files {
        let rel = format!("{EXPERIMENTS_DIR}/{file}");
        match std::fs::read_to_string(dir.join(file)) {
            Ok(text) => {
                let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
                let toks = lex::lex(&masked);
                if !range_has_span(&toks, 0..toks.len()) {
                    out.push(Violation::new(
                        RULE,
                        rel,
                        0,
                        format!(
                            "experiment `{}` records no obs span (every experiment \
                             must time itself via `summit_obs::span`)",
                            file.trim_end_matches(".rs")
                        ),
                    ));
                }
            }
            Err(e) => {
                out.push(Violation::internal(
                    RULE,
                    rel,
                    0,
                    format!("cannot read: {e}"),
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex::lex(&source::mask_comments_and_strings(src))
    }

    #[test]
    fn span_detection_is_fn_scoped() {
        let src = r#"
pub fn run_alpha() {
    let _obs = summit_obs::span("summit_core_run_alpha");
}
fn run_private() {}
pub fn run_beta(x: usize) -> usize {
    x + 1
}
"#;
        let t = toks(src);
        let fns: Vec<_> = ast::fn_items(&t)
            .into_iter()
            .filter(|f| f.is_pub && f.name.starts_with("run_"))
            .collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "run_alpha");
        assert_eq!(fns[0].line, 2);
        assert!(range_has_span(&t, fns[0].body.clone()));
        assert_eq!(fns[1].name, "run_beta");
        assert!(!range_has_span(&t, fns[1].body.clone()));
    }

    #[test]
    fn schema_ident_detection_is_fn_scoped_and_string_masked() {
        let src = r#"
pub fn write_chrome_json() {
    let tag = TRACE_SCHEMA;
}
pub fn write_folded() {
    let tag = "summit-trace/1";
}
fn write_private() {}
"#;
        let t = toks(src);
        let fns: Vec<_> = ast::fn_items(&t)
            .into_iter()
            .filter(|f| f.is_pub && f.name.starts_with("write_"))
            .collect();
        assert_eq!(fns.len(), 2);
        assert!(range_has_ident(&t, fns[0].body.clone(), "TRACE_SCHEMA"));
        // A respelled literal is masked away and must NOT satisfy the rule.
        assert!(!range_has_ident(&t, fns[1].body.clone(), "TRACE_SCHEMA"));
    }

    #[test]
    fn alias_matches_but_suffix_identifier_does_not() {
        let t = toks("fn a() { let _g = obs::span(\"x\"); }");
        assert!(range_has_span(&t, 0..t.len()));
        let t = toks("fn a() { let _g = my_obs::span(\"x\"); }");
        assert!(!range_has_span(&t, 0..t.len()));
        let t = toks("fn a() { let _g = summit_obs::span(\"x\"); }");
        assert!(range_has_span(&t, 0..t.len()));
    }
}
