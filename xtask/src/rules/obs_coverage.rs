//! Rule: the observability layer instruments every pipeline entry point.
//!
//! The self-observability contract (DESIGN.md "Observability") is that
//! each pipeline path times itself: a stage that records no span is
//! invisible in `BENCH_obs.json` and the stage-timing table, and the
//! regression silently widens as the code grows. This rule requires:
//!
//! 1. every `pub fn run_*` entry point in `crates/core/src/pipeline.rs`
//!    to create at least one obs span in its body;
//! 2. every experiment module under `crates/core/src/experiments/` to
//!    create at least one obs span (`registry.rs` is exempt — it is
//!    dispatch plumbing, not a pipeline stage; the modules it routes
//!    to open their own spans).
//!
//! The check looks for the token `obs::span(` in masked, non-test
//! source — `summit_obs::span(...)` and a `use summit_obs as obs;`
//! alias both match.

use crate::source;
use crate::violation::Violation;
use std::path::Path;

const RULE: &str = "obs-coverage";

/// Pipeline module whose public `run_*` entry points must open spans.
pub const PIPELINE_FILE: &str = "crates/core/src/pipeline.rs";
/// Experiment modules directory; every module must open a span.
pub const EXPERIMENTS_DIR: &str = "crates/core/src/experiments";
/// Span-creation token (suffix of `summit_obs::span(`).
const SPAN_TOKEN: &str = "obs::span(";

/// `(name, line, body)` of every `pub fn run_*` in masked source.
fn pub_run_fns(masked: &str) -> Vec<(String, usize, &str)> {
    const NEEDLE: &str = "pub fn run_";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = masked[from..].find(NEEDLE) {
        let abs = from + pos;
        from = abs + NEEDLE.len();
        let name: String = masked["pub fn ".len() + abs..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let line = source::line_of(masked, masked[..abs].chars().count());
        let Some(open_rel) = masked[abs..].find('{') else {
            continue; // trait method signature; not an entry point
        };
        let open = abs + open_rel;
        let mut depth = 0usize;
        let mut close = masked.len();
        for (i, c) in masked[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = open + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push((name, line, &masked[open..close]));
    }
    out
}

/// Runs the rule over `root` and returns every finding.
pub fn check(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();

    match std::fs::read_to_string(root.join(PIPELINE_FILE)) {
        Ok(text) => {
            let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
            for (name, line, body) in pub_run_fns(&masked) {
                if !body.contains(SPAN_TOKEN) {
                    out.push(Violation::new(
                        RULE,
                        PIPELINE_FILE,
                        line,
                        format!(
                            "pipeline entry point `{name}` opens no obs span \
                             (add `let _obs = summit_obs::span(\"summit_core_{name}\");`)"
                        ),
                    ));
                }
            }
        }
        Err(e) => {
            out.push(Violation::new(
                RULE,
                PIPELINE_FILE,
                0,
                format!("cannot read: {e}"),
            ));
        }
    }

    let dir = root.join(EXPERIMENTS_DIR);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        out.push(Violation::new(
            RULE,
            EXPERIMENTS_DIR,
            0,
            "missing experiments directory",
        ));
        return out;
    };
    let mut files: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            (name.ends_with(".rs") && name != "mod.rs" && name != "registry.rs").then_some(name)
        })
        .collect();
    files.sort();
    for file in &files {
        let rel = format!("{EXPERIMENTS_DIR}/{file}");
        match std::fs::read_to_string(dir.join(file)) {
            Ok(text) => {
                let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
                if !masked.contains(SPAN_TOKEN) {
                    out.push(Violation::new(
                        RULE,
                        rel,
                        0,
                        format!(
                            "experiment `{}` records no obs span (every experiment \
                             must time itself via `summit_obs::span`)",
                            file.trim_end_matches(".rs")
                        ),
                    ));
                }
            }
            Err(e) => {
                out.push(Violation::new(RULE, rel, 0, format!("cannot read: {e}")));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn extracts_pub_run_fn_bodies() {
        let src = r#"
pub fn run_alpha() {
    let _obs = summit_obs::span("summit_core_run_alpha");
}
fn run_private() {}
pub fn run_beta(x: usize) -> usize {
    x + 1
}
"#;
        let masked = source::mask_comments_and_strings(src);
        let fns = pub_run_fns(&masked);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].0, "run_alpha");
        assert_eq!(fns[0].1, 2);
        assert!(fns[0].2.contains(SPAN_TOKEN));
        assert_eq!(fns[1].0, "run_beta");
        assert!(!fns[1].2.contains(SPAN_TOKEN));
    }

    #[test]
    fn span_in_one_fn_does_not_cover_another() {
        let src = r#"
pub fn run_a() { let _obs = summit_obs::span("a"); }
pub fn run_b() { let _x = 1; }
"#;
        let masked = source::mask_comments_and_strings(src);
        let fns = pub_run_fns(&masked);
        assert!(fns[0].2.contains(SPAN_TOKEN));
        assert!(!fns[1].2.contains(SPAN_TOKEN));
    }
}
