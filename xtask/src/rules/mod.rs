//! The nine repo-specific lint rules.

pub mod determinism;
pub mod float_reduction;
pub mod hash_order;
pub mod lossy_cast;
pub mod obs_coverage;
pub mod panic_freedom;
pub mod parallelism;
pub mod registry;
pub mod spec_constants;
