//! The six repo-specific lint rules.

pub mod determinism;
pub mod obs_coverage;
pub mod panic_freedom;
pub mod parallelism;
pub mod registry;
pub mod spec_constants;
