//! The four repo-specific lint rules.

pub mod determinism;
pub mod panic_freedom;
pub mod registry;
pub mod spec_constants;
