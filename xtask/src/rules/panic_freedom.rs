//! Rule: no panics in non-test library code, outside a shrinking
//! allowlist.
//!
//! `.unwrap()`, `.expect(` and bare `panic!(` in shipping code turn
//! recoverable conditions into aborts mid-experiment. Existing sites
//! are grandfathered in `xtask/panic_allowlist.txt` as exact per-file
//! counts; the rule errors both when a file *exceeds* its budget (new
//! panic site) and when it comes in *under* (the allowlist must be
//! ratcheted down so fixed sites cannot silently regress).
//!
//! `assert!`, `assert_eq!` and `assert_ne!` in non-test library code
//! are budgeted the same way in `xtask/assert_allowlist.txt`: each
//! surviving assert is a deliberate, documented API contract, and the
//! ratchet keeps the set from growing back after the ingestion path
//! went panic-free. `debug_assert!` variants and `unreachable!` remain
//! free — they vanish in release builds or mark dead branches.
//!
//! Literal slice indexing (`xs[0]`) is reported as an advisory warning
//! by default and as an error under `--strict-indexing`.
//!
//! Scope: non-test code in every `crates/*/src` tree.

use crate::lex::{self, Kind, Tok};
use crate::source;
use crate::violation::Violation;
use crate::workspace::{rel, rust_files};
use std::collections::BTreeMap;
use std::path::Path;

const RULE: &str = "panic-freedom";
const RULE_IDX: &str = "unchecked-indexing";
const RULE_ASSERT: &str = "assert-budget";

/// Allowlist location, relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/panic_allowlist.txt";

/// Assert-budget allowlist location, relative to the workspace root.
pub const ASSERT_ALLOWLIST: &str = "xtask/assert_allowlist.txt";

/// Panic-introducing method calls: `.unwrap()` / `.expect(…)`. Exact
/// identifier matching means `.unwrap_or()` never fires.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Budgeted panic/assert macros. Identifiers are exact, so the
/// `debug_assert!` family and `dont_panic!` never match.
const PANIC_MACROS: &[&str] = &["panic"];
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// Runs the rule. Returns `(errors, warnings)`.
pub fn check(root: &Path, strict_indexing: bool) -> (Vec<Violation>, Vec<Violation>) {
    let mut errors = Vec::new();
    let mut warnings = Vec::new();

    let allowed = match load_allowlist(root, ALLOWLIST) {
        Ok(a) => a,
        Err(msg) => {
            errors.push(Violation::new(RULE, ALLOWLIST, 0, msg));
            return (errors, warnings);
        }
    };
    let allowed_asserts = match load_allowlist(root, ASSERT_ALLOWLIST) {
        Ok(a) => a,
        Err(msg) => {
            errors.push(Violation::new(RULE_ASSERT, ASSERT_ALLOWLIST, 0, msg));
            return (errors, warnings);
        }
    };

    // path (repo-relative, as written in the allowlist) -> found sites.
    let mut found: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();
    let mut found_asserts: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();

    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        errors.push(Violation::new(
            RULE,
            "crates",
            0,
            "missing crates/ directory",
        ));
        return (errors, warnings);
    };
    let mut crate_srcs: Vec<_> = entries
        .flatten()
        .map(|e| e.path().join("src"))
        .filter(|p| p.is_dir())
        .collect();
    crate_srcs.sort();

    for src_dir in crate_srcs {
        for file in rust_files(&src_dir) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                errors.push(Violation::new(RULE, rel(root, &file), 0, "unreadable file"));
                continue;
            };
            let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
            let toks = lex::lex(&masked);
            let rel_path = rel(root, &file).display().to_string();
            for site in panic_sites(&toks) {
                found.entry(rel_path.clone()).or_default().push(site);
            }
            for site in assert_sites(&toks) {
                found_asserts
                    .entry(rel_path.clone())
                    .or_default()
                    .push(site);
            }
            for line in literal_index_lines(&toks) {
                let v = Violation::new(
                    RULE_IDX,
                    rel(root, &file),
                    line,
                    "literal slice index; prefer `.first()`/`.get(n)` or a destructuring",
                );
                if strict_indexing {
                    errors.push(v);
                } else {
                    warnings.push(v);
                }
            }
        }
    }

    // Compare found counts against each allowlist, both directions.
    ratchet(
        RULE,
        ALLOWLIST,
        "handle the error instead of adding panic sites",
        "panic",
        &found,
        &allowed,
        &mut errors,
    );
    ratchet(
        RULE_ASSERT,
        ASSERT_ALLOWLIST,
        "return a typed error instead of asserting in library code",
        "assert",
        &found_asserts,
        &allowed_asserts,
        &mut errors,
    );

    (errors, warnings)
}

/// Enforces one shrink-only allowlist: errors when a file exceeds its
/// budget (with `advice`) and when the allowlist overstates reality in
/// either way (under-budget or orphaned entry).
#[allow(clippy::too_many_arguments)]
pub(crate) fn ratchet(
    rule: &'static str,
    allowlist: &'static str,
    advice: &str,
    kind: &str,
    found: &BTreeMap<String, Vec<(usize, String)>>,
    allowed: &BTreeMap<&'static str, usize>,
    errors: &mut Vec<Violation>,
) {
    for (path, sites) in found {
        let budget = allowed.get(path.as_str()).copied().unwrap_or(0);
        if sites.len() > budget {
            for (line, token) in sites {
                errors.push(Violation::new(
                    rule,
                    path.clone(),
                    *line,
                    format!(
                        "`{token}` — {} site(s) found, allowlist budget is {budget}; {advice}",
                        sites.len()
                    ),
                ));
            }
        } else if sites.len() < budget {
            errors.push(Violation::new(
                rule,
                allowlist,
                0,
                format!(
                    "stale entry: `{path}` allows {budget} but only {} site(s) remain — \
                     ratchet the budget down",
                    sites.len()
                ),
            ));
        }
    }
    for (path, budget) in allowed {
        if !found.contains_key(*path) {
            errors.push(Violation::new(
                rule,
                allowlist,
                0,
                format!(
                    "stale entry: `{path}` allows {budget} but has no {kind} sites — remove it"
                ),
            ));
        }
    }
}

/// Parses an allowlist file: `<path> <count>` per line, `#` comments.
/// Returned map borrows from a leaked string only within the call, so
/// it is keyed by owned strings upstream via `found`.
pub(crate) fn load_allowlist(
    root: &Path,
    list: &str,
) -> Result<BTreeMap<&'static str, usize>, String> {
    // The allowlist is small and read once per run; leaking it gives the
    // map a simple lifetime without cloning every key twice.
    let text = std::fs::read_to_string(root.join(list))
        .map_err(|e| format!("cannot read allowlist: {e}"))?;
    let text: &'static str = Box::leak(text.into_boxed_str());
    let mut map = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "allowlist line {}: expected `<path> <count>`",
                idx + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{count}`", idx + 1))?;
        if count == 0 {
            return Err(format!(
                "allowlist line {}: zero-count entry for `{path}` — remove it",
                idx + 1
            ));
        }
        if map.insert(path, count).is_some() {
            return Err(format!(
                "allowlist line {}: duplicate entry `{path}`",
                idx + 1
            ));
        }
    }
    Ok(map)
}

/// `.unwrap()` / `.expect(` / `panic!(` sites as `(line, token)`.
/// Token strings mirror the historical substring spellings so ratchet
/// messages stay stable.
fn panic_sites(toks: &[Tok]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| PANIC_METHODS.iter().any(|m| t.is_ident(m)))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            let name = &toks[i + 1].text;
            // `.unwrap()` only counts with an empty argument list —
            // `.unwrap_or()` is a distinct identifier already, but
            // `Option::unwrap` take no args by definition.
            let spelled = if name == "unwrap" {
                if !toks.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                    continue;
                }
                ".unwrap()".to_string()
            } else {
                ".expect(".to_string()
            };
            out.push((toks[i + 1].line, spelled));
        }
        if toks[i].kind == Kind::Ident
            && PANIC_MACROS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            out.push((toks[i].line, "panic!(".to_string()));
        }
    }
    out
}

/// `assert!(` / `assert_eq!(` / `assert_ne!(` sites as `(line, token)`.
fn assert_sites(toks: &[Tok]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == Kind::Ident
            && ASSERT_MACROS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            out.push((toks[i].line, format!("{}!(", toks[i].text)));
        }
    }
    out
}

/// Lines containing `expr[<integer literal>]` — an index expression
/// that panics when the slice is shorter than expected. The preceding
/// token must be indexable (identifier, `)` or `]`), and the content
/// a bare integer literal without suffix.
fn literal_index_lines(toks: &[Tok]) -> Vec<usize> {
    let mut lines = Vec::new();
    for i in 1..toks.len() {
        if !toks[i].is_punct('[') {
            continue;
        }
        let prev = &toks[i - 1];
        let indexable = prev.kind == Kind::Ident
            || prev.kind == Kind::Num
            || prev.is_punct(')')
            || prev.is_punct(']');
        if !indexable {
            continue;
        }
        let literal = toks.get(i + 1).is_some_and(|t| {
            t.kind == Kind::Num && t.text.chars().all(|c| c.is_ascii_digit() || c == '_')
        });
        if literal && toks.get(i + 2).is_some_and(|t| t.is_punct(']')) {
            lines.push(toks[i].line);
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex::lex(&source::mask_comments_and_strings(src))
    }

    #[test]
    fn literal_index_detection() {
        let src = "let a = xs[0];\nlet b = ys[i];\nlet c = [0u8; 32];\nlet d = arr[0u8];";
        assert_eq!(literal_index_lines(&toks(src)), vec![1]); // only xs[0]
    }

    #[test]
    fn tuple_fields_not_flagged() {
        let t = toks("let x = pair.0; let y = arr[12];");
        assert_eq!(literal_index_lines(&t).len(), 1);
    }

    #[test]
    fn panic_tokens_are_ident_exact() {
        let src = "a.unwrap(); b.unwrap_or(0); c.expect(\"x\"); dont_panic!(); panic!(\"y\");";
        let sites = panic_sites(&toks(src));
        let spellings: Vec<&str> = sites.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(spellings, vec![".unwrap()", ".expect(", "panic!("]);
    }

    #[test]
    fn debug_asserts_are_free() {
        let src = "assert!(a); assert_eq!(a, b); debug_assert!(c); debug_assert_ne!(d, e);";
        assert_eq!(assert_sites(&toks(src)).len(), 2);
    }
}
