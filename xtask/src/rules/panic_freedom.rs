//! Rule: no panics in non-test library code, outside a shrinking
//! allowlist.
//!
//! `.unwrap()`, `.expect(` and bare `panic!(` in shipping code turn
//! recoverable conditions into aborts mid-experiment. Existing sites
//! are grandfathered in `xtask/panic_allowlist.txt` as exact per-file
//! counts; the rule errors both when a file *exceeds* its budget (new
//! panic site) and when it comes in *under* (the allowlist must be
//! ratcheted down so fixed sites cannot silently regress).
//!
//! `assert!`, `assert_eq!` and `assert_ne!` in non-test library code
//! are budgeted the same way in `xtask/assert_allowlist.txt`: each
//! surviving assert is a deliberate, documented API contract, and the
//! ratchet keeps the set from growing back after the ingestion path
//! went panic-free. `debug_assert!` variants and `unreachable!` remain
//! free — they vanish in release builds or mark dead branches.
//!
//! Literal slice indexing (`xs[0]`) is reported as an advisory warning
//! by default and as an error under `--strict-indexing`.
//!
//! Scope: non-test code in every `crates/*/src` tree.

use crate::source;
use crate::violation::Violation;
use crate::workspace::{rel, rust_files};
use std::collections::BTreeMap;
use std::path::Path;

const RULE: &str = "panic-freedom";
const RULE_IDX: &str = "unchecked-indexing";
const RULE_ASSERT: &str = "assert-budget";

/// Allowlist location, relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/panic_allowlist.txt";

/// Assert-budget allowlist location, relative to the workspace root.
pub const ASSERT_ALLOWLIST: &str = "xtask/assert_allowlist.txt";

/// Panic-introducing tokens. `word_start` avoids matching
/// `.unwrap_or()` via the `(` terminator and `dont_panic!` via the
/// boundary check.
const TOKENS: &[(&str, bool)] = &[(".unwrap()", false), (".expect(", false), ("panic!(", true)];

/// Budgeted assertion tokens. All require a word start, so the
/// `debug_assert!` family (preceded by `_`) never matches.
const ASSERT_TOKENS: &[(&str, bool)] = &[
    ("assert!(", true),
    ("assert_eq!(", true),
    ("assert_ne!(", true),
];

/// Runs the rule. Returns `(errors, warnings)`.
pub fn check(root: &Path, strict_indexing: bool) -> (Vec<Violation>, Vec<Violation>) {
    let mut errors = Vec::new();
    let mut warnings = Vec::new();

    let allowed = match load_allowlist(root, ALLOWLIST) {
        Ok(a) => a,
        Err(msg) => {
            errors.push(Violation::new(RULE, ALLOWLIST, 0, msg));
            return (errors, warnings);
        }
    };
    let allowed_asserts = match load_allowlist(root, ASSERT_ALLOWLIST) {
        Ok(a) => a,
        Err(msg) => {
            errors.push(Violation::new(RULE_ASSERT, ASSERT_ALLOWLIST, 0, msg));
            return (errors, warnings);
        }
    };

    // path (repo-relative, as written in the allowlist) -> found sites.
    let mut found: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();
    let mut found_asserts: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();

    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        errors.push(Violation::new(
            RULE,
            "crates",
            0,
            "missing crates/ directory",
        ));
        return (errors, warnings);
    };
    let mut crate_srcs: Vec<_> = entries
        .flatten()
        .map(|e| e.path().join("src"))
        .filter(|p| p.is_dir())
        .collect();
    crate_srcs.sort();

    for src_dir in crate_srcs {
        for file in rust_files(&src_dir) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                errors.push(Violation::new(RULE, rel(root, &file), 0, "unreadable file"));
                continue;
            };
            let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
            let rel_path = rel(root, &file).display().to_string();
            for (token, word_start) in TOKENS {
                for line in source::find_token_lines(&masked, token, *word_start) {
                    found
                        .entry(rel_path.clone())
                        .or_default()
                        .push((line, (*token).to_string()));
                }
            }
            for (token, word_start) in ASSERT_TOKENS {
                for line in source::find_token_lines(&masked, token, *word_start) {
                    found_asserts
                        .entry(rel_path.clone())
                        .or_default()
                        .push((line, (*token).to_string()));
                }
            }
            for line in literal_index_lines(&masked) {
                let v = Violation::new(
                    RULE_IDX,
                    rel(root, &file),
                    line,
                    "literal slice index; prefer `.first()`/`.get(n)` or a destructuring",
                );
                if strict_indexing {
                    errors.push(v);
                } else {
                    warnings.push(v);
                }
            }
        }
    }

    // Compare found counts against each allowlist, both directions.
    ratchet(
        RULE,
        ALLOWLIST,
        "handle the error instead of adding panic sites",
        "panic",
        &found,
        &allowed,
        &mut errors,
    );
    ratchet(
        RULE_ASSERT,
        ASSERT_ALLOWLIST,
        "return a typed error instead of asserting in library code",
        "assert",
        &found_asserts,
        &allowed_asserts,
        &mut errors,
    );

    (errors, warnings)
}

/// Enforces one shrink-only allowlist: errors when a file exceeds its
/// budget (with `advice`) and when the allowlist overstates reality in
/// either way (under-budget or orphaned entry).
#[allow(clippy::too_many_arguments)]
pub(crate) fn ratchet(
    rule: &'static str,
    allowlist: &'static str,
    advice: &str,
    kind: &str,
    found: &BTreeMap<String, Vec<(usize, String)>>,
    allowed: &BTreeMap<&'static str, usize>,
    errors: &mut Vec<Violation>,
) {
    for (path, sites) in found {
        let budget = allowed.get(path.as_str()).copied().unwrap_or(0);
        if sites.len() > budget {
            for (line, token) in sites {
                errors.push(Violation::new(
                    rule,
                    path.clone(),
                    *line,
                    format!(
                        "`{token}` — {} site(s) found, allowlist budget is {budget}; {advice}",
                        sites.len()
                    ),
                ));
            }
        } else if sites.len() < budget {
            errors.push(Violation::new(
                rule,
                allowlist,
                0,
                format!(
                    "stale entry: `{path}` allows {budget} but only {} site(s) remain — \
                     ratchet the budget down",
                    sites.len()
                ),
            ));
        }
    }
    for (path, budget) in allowed {
        if !found.contains_key(*path) {
            errors.push(Violation::new(
                rule,
                allowlist,
                0,
                format!(
                    "stale entry: `{path}` allows {budget} but has no {kind} sites — remove it"
                ),
            ));
        }
    }
}

/// Parses an allowlist file: `<path> <count>` per line, `#` comments.
/// Returned map borrows from a leaked string only within the call, so
/// it is keyed by owned strings upstream via `found`.
pub(crate) fn load_allowlist(
    root: &Path,
    list: &str,
) -> Result<BTreeMap<&'static str, usize>, String> {
    // The allowlist is small and read once per run; leaking it gives the
    // map a simple lifetime without cloning every key twice.
    let text = std::fs::read_to_string(root.join(list))
        .map_err(|e| format!("cannot read allowlist: {e}"))?;
    let text: &'static str = Box::leak(text.into_boxed_str());
    let mut map = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "allowlist line {}: expected `<path> <count>`",
                idx + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{count}`", idx + 1))?;
        if count == 0 {
            return Err(format!(
                "allowlist line {}: zero-count entry for `{path}` — remove it",
                idx + 1
            ));
        }
        if map.insert(path, count).is_some() {
            return Err(format!(
                "allowlist line {}: duplicate entry `{path}`",
                idx + 1
            ));
        }
    }
    Ok(map)
}

/// Lines containing `expr[<integer literal>]` — an index expression
/// that panics when the slice is shorter than expected.
fn literal_index_lines(masked: &str) -> Vec<usize> {
    let chars: Vec<char> = masked.chars().collect();
    let mut lines = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        // Preceded by something indexable: identifier, `)`, or `]`.
        let Some(&prev) = chars[..i].last() else {
            continue;
        };
        if !(prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            continue;
        }
        // Content must be pure digits (underscores allowed) up to `]`.
        let mut j = i + 1;
        let mut digits = 0;
        while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
            if chars[j].is_ascii_digit() {
                digits += 1;
            }
            j += 1;
        }
        if digits > 0 && j < chars.len() && chars[j] == ']' {
            lines.push(source::line_of(masked, i));
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn literal_index_detection() {
        let src = "let a = xs[0]; let b = ys[i]; let c = [0u8; 32]; let d = m[ 1 ];";
        let m = source::mask_comments_and_strings(src);
        assert_eq!(literal_index_lines(&m), vec![1]); // only xs[0]
    }

    #[test]
    fn tuple_fields_not_flagged() {
        let m = source::mask_comments_and_strings("let x = pair.0; let y = arr[12];");
        assert_eq!(literal_index_lines(&m).len(), 1);
    }
}
