//! Rule: the simulation and analysis crates must be bit-reproducible.
//!
//! Every figure and table in this repo is regenerated from seeded
//! simulation; a single wall-clock read or entropy-seeded RNG makes a
//! run unreproducible and silently invalidates cross-run comparisons.
//! This rule bans the constructs that smuggle nondeterminism in:
//!
//! - `thread_rng` / `from_entropy` / `OsRng` / `rand::random` — RNGs
//!   without an explicit caller-supplied seed;
//! - `SystemTime::now` / `Instant::now` — wall-clock reads (timing
//!   *outputs* belong in the bench crate, not in sim/analysis).
//!
//! Scope: non-test code in `crates/sim/src` and `crates/analysis/src`.

use crate::lex;
use crate::source;
use crate::violation::Violation;
use crate::workspace::{rel, rust_files};
use std::path::Path;

const RULE: &str = "determinism";

/// Path → why it is banned. Paths are matched as token sequences via
/// [`lex::find_path`] over comment/string-stripped, test-stripped
/// source, so a longer identifier (`my_thread_rng`) never matches.
const BANNED: &[(&str, &str)] = &[
    (
        "thread_rng",
        "entropy-seeded RNG; take an explicit seed instead",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG; use SeedableRng::seed_from_u64",
    ),
    (
        "OsRng",
        "OS entropy source; deterministic crates must not read it",
    ),
    (
        "rand::random",
        "implicit thread-local RNG; take an explicit seed",
    ),
    ("SystemTime::now", "wall-clock read; pass times in as data"),
    (
        "Instant::now",
        "wall-clock read; timing belongs in crates/bench",
    ),
];

/// Directories whose non-test code must be deterministic.
pub const SCOPED_DIRS: &[&str] = &["crates/sim/src", "crates/analysis/src"];

/// Runs the rule over `root` and returns every finding.
pub fn check(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for dir in SCOPED_DIRS {
        let dir_path = root.join(dir);
        for file in rust_files(&dir_path) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                out.push(Violation::internal(
                    RULE,
                    rel(root, &file),
                    0,
                    "unreadable file",
                ));
                continue;
            };
            let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
            let toks = lex::lex(&masked);
            for (token, why) in BANNED {
                for idx in lex::find_path(&toks, token) {
                    out.push(Violation::new(
                        RULE,
                        rel(root, &file),
                        toks[idx].line,
                        format!("`{token}` in deterministic crate: {why}"),
                    ));
                }
            }
        }
    }
    out
}
