//! Rule: all data-parallelism goes through the `rayon` facade.
//!
//! The vendored `compat/rayon` pool is the one place where threads are
//! created, sized (`SUMMIT_THREADS`) and made deterministic: chunk
//! grids, ordered collection and chunk-ordered reductions live there.
//! A direct `std::thread::spawn`/`scope`/`Builder` in a library crate
//! sidesteps all of that — its scheduling is invisible to the pool's
//! obs metrics, it ignores the thread budget, and any result it
//! assembles concurrently can break the bit-reproducibility contract
//! the determinism tests enforce.
//!
//! Non-facade sites are grandfathered in `xtask/thread_allowlist.txt`
//! as exact per-file counts, ratcheted both ways like the panic
//! budget.
//!
//! Scope: non-test code in every `crates/*/src` tree AND every
//! `compat/*/src` tree. The facade itself must create threads, but
//! only at its single audited spawn site (the persistent pool's
//! `thread::Builder` call) — putting `compat/` in scope with a
//! one-site budget means any second spawn path added to the facade
//! trips the ratchet instead of slipping in silently. A missing
//! `compat/` directory is tolerated (lint fixtures only model
//! `crates/`).

use crate::lex;
use crate::rules::panic_freedom::{load_allowlist, ratchet};
use crate::source;
use crate::violation::Violation;
use crate::workspace::{rel, rust_files};
use std::collections::BTreeMap;
use std::path::Path;

const RULE: &str = "parallelism";

/// Allowlist location, relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/thread_allowlist.txt";

/// Thread-creating paths, matched as token sequences via
/// [`lex::find_path`]: a path prefix (`std::thread::scope`) still
/// matches while identifiers that merely end in `thread` do not.
const TOKENS: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];

/// Runs the rule over `root` and returns every finding.
pub fn check(root: &Path) -> Vec<Violation> {
    let mut errors = Vec::new();
    let allowed = match load_allowlist(root, ALLOWLIST) {
        Ok(a) => a,
        Err(msg) => {
            errors.push(Violation::internal(RULE, ALLOWLIST, 0, msg));
            return errors;
        }
    };

    let mut found: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        errors.push(Violation::internal(
            RULE,
            "crates",
            0,
            "missing crates/ directory",
        ));
        return errors;
    };
    let mut crate_srcs: Vec<_> = entries
        .flatten()
        .map(|e| e.path().join("src"))
        .filter(|p| p.is_dir())
        .collect();
    // The facade's own spawn site is budgeted too; fixtures without a
    // compat/ tree simply contribute nothing here.
    if let Ok(entries) = std::fs::read_dir(root.join("compat")) {
        crate_srcs.extend(
            entries
                .flatten()
                .map(|e| e.path().join("src"))
                .filter(|p| p.is_dir()),
        );
    }
    crate_srcs.sort();

    for src_dir in crate_srcs {
        for file in rust_files(&src_dir) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                errors.push(Violation::internal(
                    RULE,
                    rel(root, &file),
                    0,
                    "unreadable file",
                ));
                continue;
            };
            let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
            let toks = lex::lex(&masked);
            let rel_path = rel(root, &file).display().to_string();
            for token in TOKENS {
                for idx in lex::find_path(&toks, token) {
                    found
                        .entry(rel_path.clone())
                        .or_default()
                        .push((toks[idx].line, (*token).to_string()));
                }
            }
        }
    }

    ratchet(
        RULE,
        ALLOWLIST,
        "use the rayon facade (par_iter/into_par_iter) so parallelism stays \
         deterministic and observable",
        "thread",
        &found,
        &allowed,
        &mut errors,
    );
    errors
}
