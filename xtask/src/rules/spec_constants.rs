//! Rule: `spec.rs` matches the paper, and nobody bypasses it.
//!
//! `paper_constants.toml` is the machine-readable transcription of the
//! paper's Tables 1 and 3. This rule checks three things:
//!
//! 1. every numeric entry in the TOML has a same-named constant in
//!    `crates/sim/src/spec.rs` with the same value (const initializers
//!    are evaluated, so derived constants like `TOTAL_NODES *
//!    GPUS_PER_NODE` are compared by value);
//! 2. every scalar numeric constant in `spec.rs` is covered by the
//!    TOML — the two files cannot drift apart in either direction;
//! 3. no distinctive spec value (any integral TOML value ≥ 2000, e.g.
//!    `4626`) appears as a magic literal anywhere else in the
//!    workspace — code must name `spec::TOTAL_NODES`, not repeat it.

use crate::expr;
use crate::source;
use crate::toml_lite;
use crate::violation::Violation;
use crate::workspace::{rel, rust_files};
use std::collections::BTreeMap;
use std::path::Path;

const RULE: &str = "spec-constants";

/// Paper constants file, relative to the workspace root.
pub const TOML_PATH: &str = "paper_constants.toml";
/// The spec module the TOML is checked against.
pub const SPEC_PATH: &str = "crates/sim/src/spec.rs";

/// Threshold above which an integral paper value is distinctive enough
/// to treat as a protected "magic" literal (4626, 27648, …) — small
/// values like `6` GPUs/node would false-positive everywhere.
const MAGIC_MIN: f64 = 2000.0;

/// Relative tolerance for value comparison (consts are exact doubles;
/// this only absorbs decimal-representation noise).
const TOL: f64 = 1e-9;

/// Runs the rule over `root` and returns every finding.
pub fn check(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();

    let toml_text = match std::fs::read_to_string(root.join(TOML_PATH)) {
        Ok(t) => t,
        Err(e) => {
            out.push(Violation::new(
                RULE,
                TOML_PATH,
                0,
                format!("cannot read: {e}"),
            ));
            return out;
        }
    };
    let entries = match toml_lite::parse(&toml_text) {
        Ok(e) => e,
        Err(msg) => {
            out.push(Violation::new(RULE, TOML_PATH, 0, msg));
            return out;
        }
    };

    let spec_text = match std::fs::read_to_string(root.join(SPEC_PATH)) {
        Ok(t) => t,
        Err(e) => {
            out.push(Violation::new(
                RULE,
                SPEC_PATH,
                0,
                format!("cannot read: {e}"),
            ));
            return out;
        }
    };
    let spec_masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&spec_text));
    let consts = parse_consts(&spec_masked);

    // 1. TOML -> spec, by value.
    let mut toml_names: BTreeMap<String, f64> = BTreeMap::new();
    for e in &entries {
        if e.section.starts_with("schedule.") {
            continue;
        }
        let Some(want) = e.value.as_f64() else {
            continue; // strings/bools are annotations, not constants
        };
        let name = e.key.to_uppercase();
        toml_names.insert(name.clone(), want);
        match consts.get(&name) {
            None => out.push(Violation::new(
                RULE,
                TOML_PATH,
                e.line,
                format!(
                    "`{}` has no matching `pub const {name}` in {SPEC_PATH}",
                    e.key
                ),
            )),
            Some(&(got, line)) => {
                if !close(got, want) {
                    out.push(Violation::new(
                        RULE,
                        SPEC_PATH,
                        line,
                        format!("`{name}` = {got}, but paper_constants.toml says {want}"),
                    ));
                }
            }
        }
    }

    // 2. spec -> TOML: every scalar numeric const must be transcribed.
    for (name, &(_, line)) in &consts {
        if !toml_names.contains_key(name) {
            out.push(Violation::new(
                RULE,
                SPEC_PATH,
                line,
                format!("`{name}` is not recorded in {TOML_PATH}; add it (paper provenance)"),
            ));
        }
    }

    // Scheduling classes (Table 3) are structured, not scalar.
    check_schedule(&entries, &spec_masked, &mut out);

    // 3. Magic-literal sweep.
    let markers: BTreeMap<u64, String> = entries
        .iter()
        .filter(|e| e.value.is_integral())
        .filter_map(|e| {
            let v = e.value.as_f64()?;
            (v >= MAGIC_MIN).then(|| (v as u64, e.key.clone()))
        })
        .collect();
    check_magic_literals(root, &markers, &mut out);

    out
}

fn close(got: f64, want: f64) -> bool {
    let scale = got.abs().max(want.abs()).max(1.0);
    (got - want).abs() <= TOL * scale
}

/// Extracts `pub const NAME: T = <scalar expr>;` definitions, resolving
/// references to earlier constants. Returns name -> (value, line).
fn parse_consts(masked: &str) -> BTreeMap<String, (f64, usize)> {
    let mut env: BTreeMap<String, f64> = BTreeMap::new();
    let mut found = BTreeMap::new();
    let mut from = 0;
    const NEEDLE: &str = "pub const ";
    while let Some(pos) = masked[from..].find(NEEDLE) {
        let abs = from + pos;
        let after = &masked[abs + NEEDLE.len()..];
        from = abs + NEEDLE.len();
        let Some(colon) = after.find(':') else {
            continue;
        };
        let name = after[..colon].trim().to_string();
        let Some(eq_rel) = after.find('=') else {
            continue;
        };
        let Some(semi_rel) = after[eq_rel..].find(';') else {
            continue;
        };
        let init = &after[eq_rel + 1..eq_rel + semi_rel];
        if let Some(v) = expr::eval(init, &env) {
            let line = source::line_of(masked, masked[..abs].chars().count());
            env.insert(name.clone(), v);
            found.insert(name, (v, line));
        }
    }
    found
}

/// Cross-checks the `SCHEDULING_CLASSES` array against the
/// `[schedule.classN]` TOML sections.
fn check_schedule(entries: &[toml_lite::Entry], spec_masked: &str, out: &mut Vec<Violation>) {
    // Parse spec: sequences of `class: N`, `node_range: (a, b)`,
    // `max_walltime_h: X` in source order.
    let mut spec_classes: BTreeMap<u64, (f64, f64, f64)> = BTreeMap::new();
    let mut rest = spec_masked;
    while let Some(pos) = rest.find("class:") {
        let after = &rest[pos + "class:".len()..];
        let class = leading_number(after);
        let (range, walltime) = match (after.find("node_range:"), after.find("max_walltime_h:")) {
            (Some(r), Some(w)) => (
                &after[r + "node_range:".len()..],
                &after[w + "max_walltime_h:".len()..],
            ),
            _ => break,
        };
        let lo = leading_number(range.trim_start().trim_start_matches('('));
        let hi = range
            .find(',')
            .map(|c| leading_number(&range[c + 1..]))
            .unwrap_or(None);
        let wt = leading_number(walltime);
        if let (Some(c), Some(lo), Some(hi), Some(wt)) = (class, lo, hi, wt) {
            spec_classes.insert(c as u64, (lo, hi, wt));
        }
        rest = &rest[pos + "class:".len()..];
    }

    let mut toml_classes: BTreeMap<u64, BTreeMap<String, (f64, usize)>> = BTreeMap::new();
    for e in entries {
        if let Some(n) = e.section.strip_prefix("schedule.class") {
            if let (Ok(n), Some(v)) = (n.parse::<u64>(), e.value.as_f64()) {
                toml_classes
                    .entry(n)
                    .or_default()
                    .insert(e.key.clone(), (v, e.line));
            }
        }
    }

    for (n, keys) in &toml_classes {
        let Some(&(lo, hi, wt)) = spec_classes.get(n) else {
            out.push(Violation::new(
                RULE,
                TOML_PATH,
                keys.values().next().map(|&(_, l)| l).unwrap_or(0),
                format!("schedule.class{n} has no matching entry in SCHEDULING_CLASSES"),
            ));
            continue;
        };
        for (key, want, got) in [
            ("min_nodes", keys.get("min_nodes"), lo),
            ("max_nodes", keys.get("max_nodes"), hi),
            ("max_walltime_h", keys.get("max_walltime_h"), wt),
        ] {
            match want {
                None => out.push(Violation::new(
                    RULE,
                    TOML_PATH,
                    0,
                    format!("schedule.class{n} is missing `{key}`"),
                )),
                Some(&(w, line)) if !close(got, w) => out.push(Violation::new(
                    RULE,
                    TOML_PATH,
                    line,
                    format!("schedule.class{n}.{key} = {w}, but SCHEDULING_CLASSES has {got}"),
                )),
                Some(_) => {}
            }
        }
    }
    for n in spec_classes.keys() {
        if !toml_classes.contains_key(n) {
            out.push(Violation::new(
                RULE,
                TOML_PATH,
                0,
                format!("SCHEDULING_CLASSES class {n} is not transcribed as [schedule.class{n}]"),
            ));
        }
    }
}

fn leading_number(s: &str) -> Option<f64> {
    let s = s.trim_start();
    let end = s
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || *c == '.' || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    let cleaned: String = s[..end].chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned.trim_end_matches('.');
    cleaned.parse().ok()
}

/// Directories swept for magic literals. Everything that is not the
/// spec itself, the vendored compat shims, or xtask's own fixtures.
///
/// Unit-test (`#[cfg(test)]`) modules inside `crates/` are exempt:
/// crates below `sim` in the dependency graph (`analysis`,
/// `telemetry`) cannot name `spec` constants without a cycle, and unit
/// tests legitimately construct literal examples. Workspace-level
/// `tests/` and `examples/` see every crate, so they are swept fully.
const SWEEP_DIRS: &[&str] = &["crates", "tests", "examples"];

fn check_magic_literals(root: &Path, markers: &BTreeMap<u64, String>, out: &mut Vec<Violation>) {
    if markers.is_empty() {
        return;
    }
    let spec_abs = root.join(SPEC_PATH);
    for dir in SWEEP_DIRS {
        let exempt_unit_tests = *dir == "crates";
        for file in rust_files(&root.join(dir)) {
            if file == spec_abs {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let mut masked = source::mask_comments_and_strings(&text);
            if exempt_unit_tests {
                masked = source::mask_cfg_test_items(&masked);
            }
            for (value, line) in number_literals(&masked) {
                if value.fract() != 0.0 || value < MAGIC_MIN {
                    continue;
                }
                if let Some(key) = markers.get(&(value as u64)) {
                    out.push(Violation::new(
                        RULE,
                        rel(root, &file),
                        line,
                        format!(
                            "magic literal {value} duplicates paper constant `{key}`; \
                             use the `spec` constant instead"
                        ),
                    ));
                }
            }
        }
    }
}

/// All numeric literals in masked source, with their lines. Consumes
/// each literal fully (fraction, exponent, suffix) so `1.4626` is one
/// token, not two.
fn number_literals(masked: &str) -> Vec<(f64, usize)> {
    let chars: Vec<char> = masked.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if !c.is_ascii_digit() || prev_ident {
            i += 1;
            continue;
        }
        let start = i;
        let mut lit = String::new();
        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
            if chars[i] != '_' {
                lit.push(chars[i]);
            }
            i += 1;
        }
        if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
            lit.push('.');
            i += 1;
            while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                if chars[i] != '_' {
                    lit.push(chars[i]);
                }
                i += 1;
            }
        } else if i < n && chars[i] == '.' {
            let next = chars.get(i + 1).copied().unwrap_or(' ');
            // `4626.0` handled above; bare `4626.` (not a range/method).
            if next != '.' && !next.is_alphabetic() && next != '_' {
                i += 1;
            }
        }
        if i < n && (chars[i] == 'e' || chars[i] == 'E') {
            let mut j = i + 1;
            if j < n && (chars[j] == '+' || chars[j] == '-') {
                j += 1;
            }
            if j < n && chars[j].is_ascii_digit() {
                lit.push('e');
                if chars[i + 1] == '+' || chars[i + 1] == '-' {
                    lit.push(chars[i + 1]);
                }
                i = j;
                while i < n && chars[i].is_ascii_digit() {
                    lit.push(chars[i]);
                    i += 1;
                }
            }
        }
        // Type suffix.
        while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        if let Ok(v) = lit.parse::<f64>() {
            out.push((v, source::line_of(masked, start)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn const_parsing_resolves_references() {
        let src = "\
pub const A: usize = 4626;
pub const B: usize = A * 6;
pub const C: f64 = 2.5e6 / A as f64;
pub const ARR: [u8; 3] = [1, 2, 3];
";
        let consts = parse_consts(src);
        assert_eq!(consts.get("A"), Some(&(4626.0, 1)));
        assert_eq!(consts.get("B"), Some(&(27_756.0, 2)));
        let (c, _) = consts["C"];
        assert!((c - 2.5e6 / 4626.0).abs() < 1e-9);
        assert!(!consts.contains_key("ARR"));
    }

    #[test]
    fn literal_scanner_values_and_lines() {
        let src =
            "let a = 4_626;\nlet b = x.4626; // not code\nlet c = 1.4626;\nlet d = 0u32..4608;\n";
        let masked = source::mask_comments_and_strings(src);
        let lits = number_literals(&masked);
        let values: Vec<f64> = lits.iter().map(|&(v, _)| v).collect();
        assert!(values.contains(&4626.0));
        assert!(values.contains(&1.4626));
        assert!(values.contains(&4608.0));
        // 1.4626 must not contribute a bare 4626 token.
        assert_eq!(values.iter().filter(|&&v| v == 4626.0).count(), 2); // a + x.4626
    }

    #[test]
    fn scientific_notation_is_integral() {
        let lits = number_literals("let p = 13.0e6;");
        assert_eq!(lits, vec![(13.0e6, 1)]);
        assert_eq!(13.0e6_f64.fract(), 0.0);
    }
}
