//! Rule: no unreviewed narrowing `as` casts in the data-path crates.
//!
//! `f64 as f32`, `u64 as u16` and friends silently truncate, wrap or
//! round: a power reading cast to a too-small metric offset, or a
//! sample count wrapped through `u32`, corrupts derived tables without
//! any runtime signal. In `crates/telemetry` and `crates/analysis` —
//! the crates that carry measured values end-to-end — every cast whose
//! *target* is a narrow primitive must either go through a checked
//! conversion (`u16::try_from(idx)`, `u32::try_from(n)` with an
//! explicit saturation/error policy, see `crates/telemetry/src/convert.rs`)
//! or be budgeted in `xtask/cast_allowlist.txt` with the usual
//! shrink-only ratchet (reserved for documented quantization points
//! such as the varint codec and f32 frame storage).
//!
//! Without type inference the rule over-approximates: any `as u32` is
//! flagged even when the source type is `u8`. That is deliberate — a
//! widening cast is trivially rewritten as `u32::from(x)`, which is
//! self-documenting and stays correct when the source type changes.
//!
//! Scope: non-test code in `crates/telemetry/src` and
//! `crates/analysis/src`.

use crate::ast;
use crate::lex;
use crate::rules::panic_freedom::{load_allowlist, ratchet};
use crate::source;
use crate::violation::Violation;
use crate::workspace::{rel, rust_files};
use std::collections::BTreeMap;
use std::path::Path;

const RULE: &str = "lossy-cast";

/// Allowlist location, relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/cast_allowlist.txt";

/// Directories scanned (non-test code only).
pub const SCOPED_DIRS: &[&str] = &["crates/telemetry/src", "crates/analysis/src"];

/// Cast targets considered narrowing. `usize`/`u64`/`i64`/`f64` are
/// wide enough for every value this workspace moves.
const NARROW_TARGETS: &[&str] = &["f32", "u8", "i8", "u16", "i16", "u32", "i32"];

/// Runs the rule over `root` and returns every finding.
pub fn check(root: &Path) -> Vec<Violation> {
    let mut errors = Vec::new();
    let allowed = match load_allowlist(root, ALLOWLIST) {
        Ok(a) => a,
        Err(msg) => {
            errors.push(Violation::internal(RULE, ALLOWLIST, 0, msg));
            return errors;
        }
    };

    let mut found: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();
    for dir in SCOPED_DIRS {
        for file in rust_files(&root.join(dir)) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                errors.push(Violation::internal(
                    RULE,
                    rel(root, &file),
                    0,
                    "unreadable file",
                ));
                continue;
            };
            let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
            let toks = lex::lex(&masked);
            let rel_path = rel(root, &file).display().to_string();
            for (target, line) in ast::casts(&toks) {
                if NARROW_TARGETS.contains(&target.as_str()) {
                    found
                        .entry(rel_path.clone())
                        .or_default()
                        .push((line, format!("as {target}")));
                }
            }
        }
    }

    ratchet(
        RULE,
        ALLOWLIST,
        "use a checked conversion (`try_from`, `convert::count_u32`) with an explicit policy",
        "narrowing-cast",
        &found,
        &allowed,
        &mut errors,
    );
    errors
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::lex::lex;
    use crate::source::mask_comments_and_strings;

    fn narrow_casts(src: &str) -> Vec<(String, usize)> {
        ast::casts(&lex(&mask_comments_and_strings(src)))
            .into_iter()
            .filter(|(t, _)| NARROW_TARGETS.contains(&t.as_str()))
            .collect()
    }

    #[test]
    fn narrow_targets_flagged_wide_targets_free() {
        let cs = narrow_casts(
            "let a = x as f32;\nlet b = y as u16;\nlet c = z as f64;\nlet d = w as usize;",
        );
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], ("f32".to_string(), 1));
        assert_eq!(cs[1], ("u16".to_string(), 2));
    }

    #[test]
    fn use_aliases_do_not_fire() {
        assert!(narrow_casts("use std::fmt as f; use x::y as z;").is_empty());
    }
}
