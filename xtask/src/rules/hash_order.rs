//! Rule: no order-sensitive iteration over `HashMap`/`HashSet`.
//!
//! Hash iteration order is unspecified and (with a seeded-but-distinct
//! hasher state per process) can differ between runs, threads and
//! platforms. Any figure pipeline that iterates a hash container and
//! lets the visit order reach its output — row order, tie-breaking,
//! float accumulation order — silently breaks the repo's bit-identity
//! contract without failing a smoke-scale test.
//!
//! Detection works on the token stream: per `fn` body, the rule
//! collects hash-typed bindings (locals whose `let` statement mentions
//! `HashMap`/`HashSet`, parameters whose declared type does, and
//! `self.field` receivers whose struct field type does), then flags
//! - `for … in <hash binding> { … }` loops, and
//! - method chains entering iteration (`.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, `.into_iter()`, …)
//!
//! unless the *statement* is visibly order-insensitive: it drains into
//! a `BTreeMap`/`BTreeSet`, ends in an order-insensitive terminal
//! (`count`, `len`, `is_empty`, `all`, `any`, `contains`), or the
//! bound result is later sorted (`v.sort*()` appears in the same body).
//!
//! Grandfathered sites live in `xtask/hash_order_allowlist.txt` with
//! the same shrink-only ratchet as the panic allowlist.
//!
//! Scope: non-test code in `crates/{telemetry,sim,core,analysis}/src`.

use crate::ast;
use crate::lex::{self, Kind, Tok};
use crate::rules::panic_freedom::{load_allowlist, ratchet};
use crate::source;
use crate::violation::Violation;
use crate::workspace::{rel, rust_files};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

const RULE: &str = "hash-order";

/// Allowlist location, relative to the workspace root.
pub const ALLOWLIST: &str = "xtask/hash_order_allowlist.txt";

/// Directories scanned (non-test code only).
pub const SCOPED_DIRS: &[&str] = &[
    "crates/telemetry/src",
    "crates/sim/src",
    "crates/core/src",
    "crates/analysis/src",
];

/// Hash container type names.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that enter unordered iteration on a hash container.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "par_iter",
    "into_par_iter",
];

/// Chain terminals whose result cannot depend on visit order.
const ORDER_FREE_TERMINALS: &[&str] = &["count", "len", "is_empty", "all", "any", "contains"];

/// Runs the rule over `root` and returns every finding.
pub fn check(root: &Path) -> Vec<Violation> {
    let mut errors = Vec::new();
    let allowed = match load_allowlist(root, ALLOWLIST) {
        Ok(a) => a,
        Err(msg) => {
            errors.push(Violation::internal(RULE, ALLOWLIST, 0, msg));
            return errors;
        }
    };

    let mut found: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();
    for dir in SCOPED_DIRS {
        for file in rust_files(&root.join(dir)) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                errors.push(Violation::internal(
                    RULE,
                    rel(root, &file),
                    0,
                    "unreadable file",
                ));
                continue;
            };
            let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
            let toks = lex::lex(&masked);
            let rel_path = rel(root, &file).display().to_string();
            for (line, what) in file_sites(&toks) {
                found
                    .entry(rel_path.clone())
                    .or_default()
                    .push((line, what));
            }
        }
    }

    ratchet(
        RULE,
        ALLOWLIST,
        "sort the result, drain into a BTreeMap/BTreeSet, or switch the container",
        "hash-order",
        &found,
        &allowed,
        &mut errors,
    );
    errors
}

/// All unordered-iteration sites in one file: `(line, description)`.
fn file_sites(toks: &[Tok]) -> Vec<(usize, String)> {
    let hash_fields: BTreeSet<String> = ast::struct_fields_of_type(toks, HASH_TYPES)
        .into_iter()
        .collect();
    let mut sites = Vec::new();
    for item in ast::fn_items(toks) {
        let bindings = hash_bindings(toks, &item);
        scan_for_loops(toks, &item, &bindings, &hash_fields, &mut sites);
        scan_chains(toks, &item, &bindings, &hash_fields, &mut sites);
    }
    sites.sort();
    // One finding per line: a for-loop over `map.values()` is a single
    // site, not a loop finding plus a chain finding.
    sites.dedup_by_key(|(line, _)| *line);
    sites
}

/// Names bound to hash containers inside one fn: typed parameters and
/// `let` statements whose initializer or type mentions a hash type.
fn hash_bindings(toks: &[Tok], item: &ast::FnItem) -> BTreeSet<String> {
    let mut names = BTreeSet::new();

    // Parameters: inside the sig's paren group, `name :` at depth 1
    // followed by a type running to the `,` at depth 1.
    if let Some(open) = (item.sig.clone()).find(|&i| toks[i].is_punct('(')) {
        let close = lex::skip_group(toks, open).saturating_sub(1);
        let mut i = open + 1;
        while i + 1 < close {
            if toks[i].kind == Kind::Ident && toks[i + 1].is_punct(':') {
                let name = toks[i].text.clone();
                let mut j = i + 2;
                let mut mentions = false;
                while j < close {
                    if toks[j].is_punct(',') {
                        break;
                    }
                    if toks[j].is_punct('(') || toks[j].is_punct('[') || toks[j].is_punct('{') {
                        j = lex::skip_group(toks, j);
                        continue;
                    }
                    if toks[j].kind == Kind::Ident && HASH_TYPES.contains(&toks[j].text.as_str()) {
                        mentions = true;
                    }
                    j += 1;
                }
                if mentions {
                    names.insert(name);
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }
    }

    // Locals: a `let [mut] name` whose statement mentions a hash type.
    let body = item.body.clone();
    for i in body.clone() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut n = i + 1;
        if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        let Some(name_tok) = toks.get(n).filter(|t| t.kind == Kind::Ident) else {
            continue; // destructuring pattern; the parts are not the map
        };
        let stmt = ast::statement_around(toks, &body, i);
        if HASH_TYPES
            .iter()
            .any(|ty| lex::range_has_ident(toks, stmt.clone(), ty))
        {
            names.insert(name_tok.text.clone());
        }
    }
    names
}

/// Flags `for <pat> in <hash expr> { … }` loops. A for-loop consumes
/// visit order in its body, so it is flagged whenever the header names
/// a hash binding and the header itself shows no BTree drain.
fn scan_for_loops(
    toks: &[Tok],
    item: &ast::FnItem,
    bindings: &BTreeSet<String>,
    hash_fields: &BTreeSet<String>,
    sites: &mut Vec<(usize, String)>,
) {
    let body = item.body.clone();
    for i in body.clone() {
        if !toks[i].is_ident("for") {
            continue;
        }
        // `for<'a>` higher-ranked bounds are not loops.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            continue;
        }
        // Find the `in` keyword at pattern depth 0, then the loop `{`.
        let mut j = i + 1;
        let mut in_idx = None;
        while j < body.end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                j = lex::skip_group(toks, j);
                continue;
            }
            if t.is_punct('{') {
                break;
            }
            if t.is_ident("in") {
                in_idx = Some(j);
                break;
            }
            j += 1;
        }
        let Some(in_idx) = in_idx else { continue };
        let mut k = in_idx + 1;
        while k < body.end && !toks[k].is_punct('{') {
            if toks[k].is_punct('(') || toks[k].is_punct('[') {
                k = lex::skip_group(toks, k);
                continue;
            }
            k += 1;
        }
        let header = in_idx + 1..k;
        if !header_names_hash(toks, header.clone(), bindings, hash_fields) {
            continue;
        }
        // A header that drains into a BTree first is ordered.
        if lex::range_has_ident(toks, header.clone(), "BTreeMap")
            || lex::range_has_ident(toks, header.clone(), "BTreeSet")
        {
            continue;
        }
        sites.push((
            toks[i].line,
            "for-loop over HashMap/HashSet iteration order".to_string(),
        ));
    }
}

/// Flags `binding.iter()…` / `self.field.keys()…` chains that are not
/// visibly order-insensitive.
fn scan_chains(
    toks: &[Tok],
    item: &ast::FnItem,
    bindings: &BTreeSet<String>,
    hash_fields: &BTreeSet<String>,
    sites: &mut Vec<(usize, String)>,
) {
    let body = item.body.clone();
    for i in body.clone() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        // A receiver position: not itself a method/field name.
        if i > 0 && toks[i - 1].is_punct('.') {
            continue;
        }
        let is_receiver = (t.text == "self" && hash_fields_receiver(toks, i, hash_fields))
            || (bindings.contains(&t.text) && toks.get(i + 1).is_some_and(|x| x.is_punct('.')));
        if !is_receiver {
            continue;
        }
        let links = ast::chain_at(toks, i + 1);
        let Some(entry) = links
            .iter()
            .find(|l| ITER_METHODS.contains(&l.name.as_str()))
        else {
            continue;
        };
        if chain_is_sanitized(toks, &body, i, &links) {
            continue;
        }
        sites.push((
            entry.line,
            format!(".{}() over HashMap/HashSet without ordering", entry.name),
        ));
    }
}

/// True when token `i` is `self` and the next link is a hash field:
/// `self . field …`.
fn hash_fields_receiver(toks: &[Tok], i: usize, hash_fields: &BTreeSet<String>) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
        && toks
            .get(i + 2)
            .is_some_and(|t| t.kind == Kind::Ident && hash_fields.contains(&t.text))
}

/// Order-insensitivity checks for a flagged chain: BTree drain in the
/// statement, an order-free terminal link, or a later sort of the
/// bound result.
fn chain_is_sanitized(
    toks: &[Tok],
    body: &std::ops::Range<usize>,
    receiver: usize,
    links: &[ast::ChainLink],
) -> bool {
    let stmt = ast::statement_around(toks, body, receiver);
    if lex::range_has_ident(toks, stmt.clone(), "BTreeMap")
        || lex::range_has_ident(toks, stmt.clone(), "BTreeSet")
    {
        return true;
    }
    if links
        .last()
        .is_some_and(|l| ORDER_FREE_TERMINALS.contains(&l.name.as_str()))
    {
        return true;
    }
    // `let v = map.iter()…collect();` followed by `v.sort*(…)` later in
    // the same body: the sort re-establishes a total order.
    if toks.get(stmt.start).is_some_and(|t| t.is_ident("let")) {
        let mut n = stmt.start + 1;
        if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        if let Some(bound) = toks.get(n).filter(|t| t.kind == Kind::Ident) {
            for k in stmt.end..body.end {
                if toks[k].is_ident(&bound.text)
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
                    && toks
                        .get(k + 2)
                        .is_some_and(|t| t.kind == Kind::Ident && t.text.starts_with("sort"))
                {
                    return true;
                }
            }
        }
    }
    false
}

/// True when the for-loop header expression names a hash binding or a
/// `self.field` hash field.
fn header_names_hash(
    toks: &[Tok],
    header: std::ops::Range<usize>,
    bindings: &BTreeSet<String>,
    hash_fields: &BTreeSet<String>,
) -> bool {
    for i in header.clone() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        if i > 0 && toks[i - 1].is_punct('.') {
            // `.field` — only hash fields of self count.
            if hash_fields.contains(&t.text) && i >= 2 && toks[i - 2].is_ident("self") {
                return true;
            }
            continue;
        }
        if bindings.contains(&t.text) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::lex::lex;
    use crate::source::mask_comments_and_strings;

    fn sites(src: &str) -> Vec<(usize, String)> {
        file_sites(&lex(&mask_comments_and_strings(src)))
    }

    #[test]
    fn flags_for_loop_over_hash_local() {
        let src = "fn f() { let mut m: HashMap<u32, u8> = HashMap::new();\nfor (k, v) in &m { use_it(k, v); } }";
        let s = sites(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, 2);
    }

    #[test]
    fn flags_unsorted_iter_chain_on_param() {
        let src = "fn f(m: &HashMap<u32, u8>) -> Vec<u8> { m.values().copied().collect() }";
        assert_eq!(sites(src).len(), 1);
    }

    #[test]
    fn btree_collect_is_clean() {
        let src = "fn f(m: &HashMap<u32, u8>) -> BTreeMap<u32, u8> {\n m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>() }";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn later_sort_is_clean() {
        let src = "fn f(m: HashMap<u32, u8>) -> Vec<(u32, u8)> {\n let mut rows: Vec<_> = m.into_iter().collect();\n rows.sort_by_key(|r| r.0);\n rows }";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn order_free_terminal_is_clean() {
        let src = "fn f(m: &HashMap<u32, u8>) -> usize { m.values().count() }";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn self_hash_field_is_tracked() {
        let src = "struct S { by_node: HashMap<u32, u8> }\nimpl S {\n fn g(&self) -> Vec<u8> { self.by_node.values().copied().collect() }\n fn h(&self, k: u32) -> Option<&u8> { self.by_node.get(&k) }\n}";
        let s = sites(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, 3);
    }

    #[test]
    fn non_hash_containers_are_free() {
        let src = "fn f(v: &[u8]) -> Vec<u8> { let xs: Vec<u8> = v.to_vec(); xs.iter().copied().collect() }";
        assert!(sites(src).is_empty());
    }
}
