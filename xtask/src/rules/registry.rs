//! Rule: every experiment is wired end to end through the registry.
//!
//! An experiment module that exists but is missing from the module
//! tree, implements no `Experiment` adapter, or never enters the
//! static registry is dead weight that silently rots — the unified
//! `experiments` driver cannot list or run it. For every
//! `crates/core/src/experiments/<name>.rs` (excluding `mod.rs` and the
//! registry itself) this rule requires:
//!
//! 1. a `mod <name>;` declaration in `experiments/mod.rs`;
//! 2. an `impl Experiment for` adapter in the module file;
//! 3. a `<name>::` reference in `experiments/registry.rs` (the module's
//!    `Study` must appear in `REGISTRY`);
//! 4. the smoke test iterating the registry (a `REGISTRY` reference in
//!    `tests/experiments_smoke.rs`), which covers every registered
//!    study without per-module wiring.

use crate::source;
use crate::violation::Violation;
use std::path::Path;

const RULE: &str = "registry";

/// Experiment modules directory, relative to the workspace root.
pub const EXPERIMENTS_DIR: &str = "crates/core/src/experiments";
/// The static registry every module must be entered in.
pub const REGISTRY_FILE: &str = "crates/core/src/experiments/registry.rs";
/// Smoke-test file that must iterate the registry.
pub const SMOKE_TEST: &str = "tests/experiments_smoke.rs";

/// Runs the rule over `root` and returns every finding.
pub fn check(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();

    let dir = root.join(EXPERIMENTS_DIR);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        out.push(Violation::new(
            RULE,
            EXPERIMENTS_DIR,
            0,
            "missing experiments directory",
        ));
        return out;
    };
    let mut modules: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.strip_suffix(".rs")
                .filter(|stem| *stem != "mod" && *stem != "registry")
                .map(str::to_string)
        })
        .collect();
    modules.sort();

    let mod_rs = dir.join("mod.rs");
    let mod_masked = match std::fs::read_to_string(&mod_rs) {
        Ok(t) => source::mask_comments_and_strings(&t),
        Err(e) => {
            out.push(Violation::new(
                RULE,
                format!("{EXPERIMENTS_DIR}/mod.rs"),
                0,
                format!("cannot read: {e}"),
            ));
            return out;
        }
    };
    let registry_masked = match std::fs::read_to_string(root.join(REGISTRY_FILE)) {
        Ok(t) => source::mask_cfg_test_items(&source::mask_comments_and_strings(&t)),
        Err(e) => {
            out.push(Violation::new(
                RULE,
                REGISTRY_FILE,
                0,
                format!("cannot read: {e}"),
            ));
            return out;
        }
    };
    let smoke_masked = match std::fs::read_to_string(root.join(SMOKE_TEST)) {
        Ok(t) => source::mask_comments_and_strings(&t),
        Err(e) => {
            out.push(Violation::new(
                RULE,
                SMOKE_TEST,
                0,
                format!("cannot read: {e}"),
            ));
            return out;
        }
    };

    for name in &modules {
        if source::find_token_lines(&mod_masked, &format!("mod {name};"), true).is_empty() {
            out.push(Violation::new(
                RULE,
                format!("{EXPERIMENTS_DIR}/mod.rs"),
                0,
                format!("experiment `{name}` is not declared (`pub mod {name};`)"),
            ));
        }
        let module_rel = format!("{EXPERIMENTS_DIR}/{name}.rs");
        match std::fs::read_to_string(dir.join(format!("{name}.rs"))) {
            Ok(text) => {
                let masked = source::mask_cfg_test_items(&source::mask_comments_and_strings(&text));
                if source::find_token_lines(&masked, "impl Experiment for", true).is_empty() {
                    out.push(Violation::new(
                        RULE,
                        module_rel,
                        0,
                        format!(
                            "experiment `{name}` has no registry adapter \
                             (`impl Experiment for` missing)"
                        ),
                    ));
                }
            }
            Err(e) => {
                out.push(Violation::new(
                    RULE,
                    module_rel,
                    0,
                    format!("cannot read: {e}"),
                ));
            }
        }
        if source::find_token_lines(&registry_masked, &format!("{name}::"), true).is_empty() {
            out.push(Violation::new(
                RULE,
                REGISTRY_FILE,
                0,
                format!(
                    "experiment `{name}` is not entered in REGISTRY \
                     (`{name}::` never referenced)"
                ),
            ));
        }
    }

    if source::find_token_lines(&smoke_masked, "REGISTRY", true).is_empty() {
        out.push(Violation::new(
            RULE,
            SMOKE_TEST,
            0,
            "smoke test does not iterate the experiment registry \
             (`REGISTRY` never referenced)",
        ));
    }

    out
}
