//! Rule: every experiment is wired end to end.
//!
//! An experiment module that exists but is missing from the module
//! registry, lacks a runner binary, or has no smoke coverage is dead
//! weight that silently rots. For every
//! `crates/core/src/experiments/<name>.rs` this rule requires:
//!
//! 1. a `mod <name>;` declaration in `experiments/mod.rs`;
//! 2. a runner at `crates/bench/src/bin/<name>.rs` (a few modules have
//!    historically-named binaries, see [`BIN_ALIASES`]);
//! 3. a `<name>::` reference in `tests/experiments_smoke.rs`.

use crate::source;
use crate::violation::Violation;
use std::path::Path;

const RULE: &str = "registry";

/// Experiment modules directory, relative to the workspace root.
pub const EXPERIMENTS_DIR: &str = "crates/core/src/experiments";
/// Runner binaries directory.
pub const BIN_DIR: &str = "crates/bench/src/bin";
/// Smoke-test file that must exercise every module.
pub const SMOKE_TEST: &str = "tests/experiments_smoke.rs";

/// module name -> binary name, where they historically differ.
pub const BIN_ALIASES: &[(&str, &str)] = &[("tables", "table1_3")];

/// Runs the rule over `root` and returns every finding.
pub fn check(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();

    let dir = root.join(EXPERIMENTS_DIR);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        out.push(Violation::new(
            RULE,
            EXPERIMENTS_DIR,
            0,
            "missing experiments directory",
        ));
        return out;
    };
    let mut modules: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.strip_suffix(".rs")
                .filter(|stem| *stem != "mod")
                .map(str::to_string)
        })
        .collect();
    modules.sort();

    let mod_rs = dir.join("mod.rs");
    let mod_masked = match std::fs::read_to_string(&mod_rs) {
        Ok(t) => source::mask_comments_and_strings(&t),
        Err(e) => {
            out.push(Violation::new(
                RULE,
                format!("{EXPERIMENTS_DIR}/mod.rs"),
                0,
                format!("cannot read: {e}"),
            ));
            return out;
        }
    };
    let smoke_masked = match std::fs::read_to_string(root.join(SMOKE_TEST)) {
        Ok(t) => source::mask_comments_and_strings(&t),
        Err(e) => {
            out.push(Violation::new(
                RULE,
                SMOKE_TEST,
                0,
                format!("cannot read: {e}"),
            ));
            return out;
        }
    };

    for name in &modules {
        if source::find_token_lines(&mod_masked, &format!("mod {name};"), true).is_empty() {
            out.push(Violation::new(
                RULE,
                format!("{EXPERIMENTS_DIR}/mod.rs"),
                0,
                format!("experiment `{name}` is not declared (`pub mod {name};`)"),
            ));
        }
        let bin = BIN_ALIASES
            .iter()
            .find(|(m, _)| m == name)
            .map(|&(_, b)| b)
            .unwrap_or(name.as_str());
        let bin_path = root.join(BIN_DIR).join(format!("{bin}.rs"));
        if !bin_path.is_file() {
            out.push(Violation::new(
                RULE,
                format!("{BIN_DIR}/{bin}.rs"),
                0,
                format!("experiment `{name}` has no runner binary"),
            ));
        }
        if source::find_token_lines(&smoke_masked, &format!("{name}::"), true).is_empty() {
            out.push(Violation::new(
                RULE,
                SMOKE_TEST,
                0,
                format!("experiment `{name}` has no smoke coverage (`{name}::` never referenced)"),
            ));
        }
    }

    out
}
