//! Token stream over masked Rust source.
//!
//! [`lex`] turns the output of [`crate::source::mask_comments_and_strings`]
//! (usually also test-stripped via
//! [`crate::source::mask_cfg_test_items`]) into a flat token stream of
//! identifiers, numeric literals and single-character punctuation.
//! Masking has already removed comment and literal *contents*, so the
//! lexer needs no escape or string handling, and a token can never come
//! from prose. Every token carries its 1-based source line, which the
//! rules report directly.
//!
//! This is deliberately not a full Rust lexer: multi-character
//! operators arrive as consecutive punctuation tokens (`::` is two
//! `:`), and lifetimes lex as a `'` punct followed by an identifier.
//! Token-sequence matching (see [`find_path`]) absorbs both, and the
//! simplicity keeps xtask dependency-free and the scanner obviously
//! line-exact.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`let`, `HashMap`, `r#raw` minus the `r#`).
    Ident,
    /// Numeric literal, including suffixes (`1_000`, `0.5f32`, `0xFF`).
    Num,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: Kind,
    /// Exact source text (one character for punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// True when the token is exactly the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// True when the token is exactly the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.chars().eq(std::iter::once(c))
    }

    /// True for numeric literals that are floating-point: a decimal
    /// point or an explicit `f32`/`f64` suffix.
    pub fn is_float_literal(&self) -> bool {
        self.kind == Kind::Num
            && (self.text.contains('.') || self.text.ends_with("f32") || self.text.ends_with("f64"))
    }
}

/// Lexes masked source into tokens.
pub fn lex(masked: &str) -> Vec<Tok> {
    let chars: Vec<char> = masked.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                kind: Kind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut seen_dot = false;
            while i < chars.len() {
                let d = chars[i];
                if d.is_alphanumeric() || d == '_' {
                    i += 1;
                } else if d == '.'
                    && !seen_dot
                    && i + 1 < chars.len()
                    && chars[i + 1].is_ascii_digit()
                {
                    // Decimal point of a float literal; `0..n` ranges
                    // and `pair.0` tuple fields keep their `.` puncts.
                    seen_dot = true;
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: Kind::Num,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        toks.push(Tok {
            kind: Kind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// Token indices where the `::`-separated path `pattern` (e.g.
/// `"thread::spawn"`) occurs as consecutive tokens. Matching is
/// suffix-friendly: `std::thread::spawn` contains `thread::spawn`, but
/// a *longer identifier* never matches (`mythread::spawn` does not).
pub fn find_path(toks: &[Tok], pattern: &str) -> Vec<usize> {
    let segs: Vec<&str> = pattern.split("::").collect();
    let mut out = Vec::new();
    'scan: for i in 0..toks.len() {
        if !toks[i].is_ident(segs[0]) {
            continue;
        }
        let mut j = i + 1;
        for seg in &segs[1..] {
            if toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 2).is_some_and(|t| t.is_ident(seg))
            {
                j += 3;
            } else {
                continue 'scan;
            }
        }
        out.push(i);
    }
    out
}

/// Index just past the delimiter that closes the group opened at
/// `open` (`(` → `)`, `[` → `]`, `{` → `}`). Returns `toks.len()` when
/// the group never closes (truncated input). Only the opener's own
/// bracket pair is depth-counted; mixed pairs nest without confusion
/// because each pair balances independently in valid Rust.
pub fn skip_group(toks: &[Tok], open: usize) -> usize {
    let (oc, cc) = match toks.get(open).map(|t| t.text.as_str()) {
        Some("(") => ('(', ')'),
        Some("[") => ('[', ']'),
        Some("{") => ('{', '}'),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
    }
    toks.len()
}

/// Index just past the `>` that closes the generic-argument list opened
/// by the `<` at `open`. A `>` preceded by `-` (the `->` arrow inside
/// function-type arguments) does not close the list. Returns
/// `toks.len()` when unbalanced.
pub fn skip_angles(toks: &[Tok], open: usize) -> usize {
    if !toks.get(open).is_some_and(|t| t.is_punct('<')) {
        return open + 1;
    }
    let mut depth = 0isize;
    let mut k = open;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(k > 0 && toks[k - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        } else if t.is_punct('(') {
            k = skip_group(toks, k);
            continue;
        }
        k += 1;
    }
    toks.len()
}

/// True when any token in `range` is the identifier `name`.
pub fn range_has_ident(toks: &[Tok], range: std::ops::Range<usize>, name: &str) -> bool {
    toks[range.start.min(toks.len())..range.end.min(toks.len())]
        .iter()
        .any(|t| t.is_ident(name))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn texts(toks: &[Tok]) -> Vec<&str> {
        toks.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn lexes_idents_numbers_and_puncts() {
        let toks = lex("let x = ys[0] + 1.5f64;");
        assert_eq!(
            texts(&toks),
            vec!["let", "x", "=", "ys", "[", "0", "]", "+", "1.5f64", ";"]
        );
        assert!(toks[8].is_float_literal());
        assert!(!toks[5].is_float_literal());
    }

    #[test]
    fn ranges_and_tuple_fields_keep_their_dots() {
        assert_eq!(texts(&lex("0..10")), vec!["0", ".", ".", "10"]);
        assert_eq!(texts(&lex("pair.0")), vec!["pair", ".", "0"]);
        assert_eq!(texts(&lex("1.25")), vec!["1.25"]);
    }

    #[test]
    fn lines_are_exact() {
        let toks = lex("a\nb c\n\nd");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 2, 4]);
    }

    #[test]
    fn path_matching_is_suffix_friendly_but_ident_exact() {
        let toks = lex("std::thread::spawn(f); mythread::spawn(g); thread::spawner(h);");
        let hits = find_path(&toks, "thread::spawn");
        assert_eq!(hits.len(), 1);
        assert_eq!(toks[hits[0]].line, 1);
    }

    #[test]
    fn group_and_angle_skipping() {
        let toks = lex("f(a, (b, c))[0] g::<Vec<f64>>(x)");
        let close = skip_group(&toks, 1); // `(` after f
        assert!(toks[close].is_punct('['));
        let lt = toks.iter().position(|t| t.is_punct('<')).unwrap();
        let after = skip_angles(&toks, lt);
        assert!(toks[after].is_punct('('));
    }

    #[test]
    fn arrow_inside_angles_does_not_close() {
        let toks = lex("c::<fn() -> u8>(x)");
        let lt = toks.iter().position(|t| t.is_punct('<')).unwrap();
        let after = skip_angles(&toks, lt);
        assert!(toks[after].is_punct('('), "skipped past the fn-type arrow");
    }
}
