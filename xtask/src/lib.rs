//! Library surface of the `xtask` developer tool.
//!
//! The lint rules live here (rather than in the binary) so the fixture
//! integration tests in `xtask/tests/` can point each rule at a
//! miniature violating/clean workspace and assert exactly where it
//! fires. See `src/main.rs` for the CLI.

pub mod ast;
pub mod bench_compare;
pub mod expr;
pub mod json_report;
pub mod lex;
pub mod ratchet;
pub mod rules;
pub mod source;
pub mod toml_lite;
pub mod trace_validate;
pub mod violation;
pub mod workspace;
