//! Item-level AST-lite recovered from the token stream.
//!
//! This layer sits between [`crate::lex`] and the expression-aware
//! rules (`hash-order`, `float-reduction`, `lossy-cast`,
//! `obs-coverage`): it recovers `fn` items with their signature and
//! body token ranges, struct fields, method-call chains (with turbofish
//! and argument extents) and `as` cast expressions. It is *not* a
//! parser — precedence, types and name resolution are out of scope —
//! but token ranges are exact, which is all a lint that reports
//! `file:line` needs.

use crate::lex::{self, Kind, Tok};
use std::ops::Range;

/// One `fn` item: name, declaration line, and token ranges.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item is `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Tokens between the name and the body brace: generics, the
    /// parameter list, return type and where-clause.
    pub sig: Range<usize>,
    /// Body tokens, outer braces excluded. Empty for bodyless
    /// trait-method signatures.
    pub body: Range<usize>,
}

/// Recovers every `fn` item (including nested and `impl`-block
/// methods) by linear scan: `fn <name> <sig> { <body> }`.
pub fn fn_items(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == Kind::Ident) else {
            continue; // `Fn(..)` bounds lex as idents too, but lack a name
        };
        // Find the body `{` (or `;` for a bodyless signature). Braces
        // cannot appear in a signature's generics or return type.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        let sig = i + 2..j;
        let body = if j < toks.len() && toks[j].is_punct('{') {
            j + 1..lex::skip_group(toks, j).saturating_sub(1)
        } else {
            j..j
        };
        out.push(FnItem {
            name: name_tok.text.clone(),
            line: toks[i].line,
            is_pub: has_pub_qualifier(toks, i),
            sig,
            body,
        });
    }
    out
}

/// Walks back from the `fn` keyword over qualifier tokens (`pub`,
/// `pub(crate)`, `const`, `unsafe`, `async`, `extern`) looking for
/// `pub`.
fn has_pub_qualifier(toks: &[Tok], fn_idx: usize) -> bool {
    const QUALIFIERS: &[&str] = &[
        "pub", "crate", "super", "self", "in", "const", "unsafe", "async", "extern",
    ];
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_ident("pub") {
            return true;
        }
        let qualifier = (t.kind == Kind::Ident && QUALIFIERS.contains(&t.text.as_str()))
            || t.is_punct('(')
            || t.is_punct(')');
        if !qualifier {
            return false;
        }
    }
    false
}

/// One link of a method-call chain: `.name::<turbofish>(args)`.
#[derive(Debug, Clone)]
pub struct ChainLink {
    /// Method or field name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Token range of the turbofish generic arguments (empty if none).
    pub turbofish: Range<usize>,
    /// Token range of the call arguments (empty for field access).
    pub args: Range<usize>,
}

/// Parses the method links continuing a chain at `pos` (the index of a
/// `.` token): `.name`, optional `::<...>`, optional `(args)`,
/// repeated. Tuple-field hops (`.0`) are skipped; the walk stops at the
/// first token that does not continue the chain.
pub fn chain_at(toks: &[Tok], mut pos: usize) -> Vec<ChainLink> {
    let mut out = Vec::new();
    while pos < toks.len() && toks[pos].is_punct('.') {
        let Some(name_tok) = toks.get(pos + 1) else {
            break;
        };
        if name_tok.kind == Kind::Num {
            pos += 2; // tuple-field access, chain continues
            continue;
        }
        if name_tok.kind != Kind::Ident {
            break;
        }
        let mut p = pos + 2;
        let mut turbofish = p..p;
        if toks.get(p).is_some_and(|t| t.is_punct(':'))
            && toks.get(p + 1).is_some_and(|t| t.is_punct(':'))
        {
            if !toks.get(p + 2).is_some_and(|t| t.is_punct('<')) {
                break; // `.name::ident` is a path, not a chain link
            }
            let close = lex::skip_angles(toks, p + 2);
            turbofish = p + 3..close.saturating_sub(1);
            p = close;
        }
        let mut args = p..p;
        if toks.get(p).is_some_and(|t| t.is_punct('(')) {
            let close = lex::skip_group(toks, p);
            args = p + 1..close.saturating_sub(1);
            p = close;
        }
        out.push(ChainLink {
            name: name_tok.text.clone(),
            line: name_tok.line,
            turbofish,
            args,
        });
        pos = p;
    }
    out
}

/// Every `as <Type>` cast expression: `(target type name, line)`.
/// `use x as y` aliases never collide because the rules filter on
/// primitive target names.
pub fn casts(toks: &[Tok]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].is_ident("as") && toks[i + 1].kind == Kind::Ident {
            out.push((toks[i + 1].text.clone(), toks[i + 1].line));
        }
    }
    out
}

/// Struct fields whose declared type mentions any of `type_names`.
/// Scans `struct Name { field: Type, ... }` items; tuple structs have
/// no named fields and are skipped.
pub fn struct_fields_of_type(toks: &[Tok], type_names: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        // `struct Name<generics> {` — skip to the brace, bail at `;`/`(`.
        let mut j = i + 1;
        while j < toks.len()
            && !toks[j].is_punct('{')
            && !toks[j].is_punct(';')
            && !toks[j].is_punct('(')
        {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('{') {
            i = j + 1;
            continue;
        }
        let close = lex::skip_group(toks, j);
        // Fields: `name :` at brace depth 1, type runs to the `,` at
        // depth 1 (angle and group depths tracked).
        let mut k = j + 1;
        while k + 1 < close.saturating_sub(1) {
            if toks[k].kind == Kind::Ident && toks[k + 1].is_punct(':') {
                let name = toks[k].text.clone();
                let mut t = k + 2;
                let mut mentions = false;
                while t < close.saturating_sub(1) {
                    let tok = &toks[t];
                    if tok.is_punct(',') {
                        break;
                    }
                    if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
                        t = lex::skip_group(toks, t);
                        continue;
                    }
                    if tok.kind == Kind::Ident && type_names.contains(&tok.text.as_str()) {
                        mentions = true;
                    }
                    t += 1;
                }
                if mentions {
                    out.push(name);
                }
                k = t + 1;
            } else {
                k += 1;
            }
        }
        i = close;
    }
    out
}

/// Extent of the statement containing token `at` within `body`:
/// scans backward to the previous `;`/`{`/`}` and forward to the next
/// `;` at the same group depth (so closure bodies and nested calls stay
/// inside the statement).
pub fn statement_around(toks: &[Tok], body: &Range<usize>, at: usize) -> Range<usize> {
    let mut start = at;
    while start > body.start {
        let t = &toks[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    let mut end = at;
    let mut depth = 0usize;
    while end < body.end {
        let t = &toks[end];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(';') && depth == 0 {
            end += 1;
            break;
        }
        end += 1;
    }
    start..end
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::lex::lex;
    use crate::source::mask_comments_and_strings;

    fn toks(src: &str) -> Vec<Tok> {
        lex(&mask_comments_and_strings(src))
    }

    #[test]
    fn recovers_fn_items_with_bodies() {
        let t = toks("pub fn run_a(x: u8) -> u8 { x + 1 }\nfn helper() {}\ntrait T { fn sig(); }");
        let fns = fn_items(&t);
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].name, "run_a");
        assert!(fns[0].is_pub);
        assert_eq!(fns[0].line, 1);
        assert!(!fns[0].body.is_empty());
        assert!(!fns[1].is_pub);
        assert_eq!(fns[2].name, "sig");
        assert!(fns[2].body.is_empty(), "bodyless trait signature");
    }

    #[test]
    fn pub_crate_counts_as_pub() {
        let t = toks("pub(crate) fn f() {} impl X { pub const fn g() {} }");
        let fns = fn_items(&t);
        assert!(fns[0].is_pub);
        assert!(fns[1].is_pub);
    }

    #[test]
    fn chains_with_turbofish_and_args() {
        let t = toks("xs.iter().map(|v| v * 2).sum::<f64>();");
        let dot = t.iter().position(|x| x.is_punct('.')).unwrap();
        let links = chain_at(&t, dot);
        let names: Vec<&str> = links.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["iter", "map", "sum"]);
        assert!(lex::range_has_ident(&t, links[2].turbofish.clone(), "f64"));
        assert!(!links[1].args.is_empty());
    }

    #[test]
    fn tuple_field_hops_do_not_break_chains() {
        let t = toks("pair.0.iter().count();");
        let dot = t.iter().position(|x| x.is_punct('.')).unwrap();
        let names: Vec<String> = chain_at(&t, dot).into_iter().map(|l| l.name).collect();
        assert_eq!(names, vec!["iter", "count"]);
    }

    #[test]
    fn finds_casts() {
        let t = toks("let a = x as u16; let b = (y + 1.0) as f32; use std::fmt as f;");
        let cs = casts(&t);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].0, "u16");
        assert_eq!(cs[1].0, "f32");
        assert_eq!(cs[2].0, "f"); // alias; rules filter on primitives
    }

    #[test]
    fn struct_fields_by_type() {
        let t = toks(
            "pub struct S { by_node: HashMap<u32, Vec<u8>>, names: Vec<String>, set: HashSet<u64> }",
        );
        let fields = struct_fields_of_type(&t, &["HashMap", "HashSet"]);
        assert_eq!(fields, vec!["by_node", "set"]);
    }

    #[test]
    fn statement_extent_spans_closures() {
        let src =
            "fn f() { let v = m.iter().map(|(k, v)| { k + v }).collect::<Vec<_>>(); v.sort(); }";
        let t = toks(src);
        let fns = fn_items(&t);
        let m = t.iter().position(|x| x.is_ident("m")).unwrap();
        let stmt = statement_around(&t, &fns[0].body, m);
        let text: Vec<&str> = t[stmt.clone()].iter().map(|x| x.text.as_str()).collect();
        assert_eq!(text.first(), Some(&"let"));
        assert_eq!(text.last(), Some(&";"));
        assert!(text.contains(&"collect"));
        assert!(!text.contains(&"sort"), "next statement excluded");
    }
}
