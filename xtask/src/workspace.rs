//! Workspace discovery and file walking for the lint rules.

use std::io;
use std::path::{Path, PathBuf};

/// Returns the workspace root (parent of the xtask crate).
pub fn workspace_root() -> io::Result<PathBuf> {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest_dir
        .parent()
        .map(Path::to_path_buf)
        .ok_or_else(|| io::Error::other("xtask manifest dir has no parent"))
}

/// Recursively collects `.rs` files under `dir` (sorted for stable
/// output), skipping `target/` and hidden directories.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect(dir, &mut out);
    out.sort();
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Repo-relative display form of an absolute path.
pub fn rel(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}
