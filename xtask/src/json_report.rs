//! Machine-readable lint report (`summit-lint/1`).
//!
//! `cargo xtask lint --json` writes `BENCH_lint.json` at the workspace
//! root so CI can track the lint surface as a trajectory: per-rule
//! violation/warning counts, per-rule wall time, and the ratchet debt
//! still budgeted in each `xtask/*_allowlist.txt`. The JSON is rendered
//! by hand — xtask is dependency-free by design — and the schema is
//! append-only: consumers must ignore unknown keys.
//!
//! ```json
//! {
//!   "schema": "summit-lint/1",
//!   "rules": [
//!     {"name": "determinism", "violations": 0, "warnings": 0, "wall_ms": 1.42}
//!   ],
//!   "allowlists": [
//!     {"file": "xtask/panic_allowlist.txt", "entries": 1, "budget": 2}
//!   ],
//!   "totals": {"violations": 0, "warnings": 0, "wall_ms": 9.1, "allowlist_budget": 29}
//! }
//! ```

use std::path::{Path, PathBuf};

/// Outcome of one rule for the report.
#[derive(Debug, Clone)]
pub struct RuleStat {
    /// Rule name as printed by the CLI.
    pub name: &'static str,
    /// Error-level findings (internal failures included).
    pub violations: usize,
    /// Advisory warnings.
    pub warnings: usize,
    /// Wall time spent in the rule's `check`.
    pub wall_ms: f64,
}

/// Remaining ratchet debt recorded in one allowlist file.
#[derive(Debug, Clone)]
pub struct AllowlistDebt {
    /// Repo-relative allowlist path.
    pub file: String,
    /// Number of budgeted file entries.
    pub entries: usize,
    /// Sum of all per-file budgets (total grandfathered sites).
    pub budget: usize,
}

/// Scans `xtask/*_allowlist.txt` and totals each file's budget.
/// Returns files in sorted order; a malformed allowlist is an error
/// (the lint rules will have reported it too).
pub fn allowlist_debt(root: &Path) -> Result<Vec<AllowlistDebt>, String> {
    let dir = root.join("xtask");
    let entries =
        std::fs::read_dir(&dir).map_err(|e| format!("cannot read xtask/ directory: {e}"))?;
    let mut names: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.ends_with("_allowlist.txt").then_some(name)
        })
        .collect();
    names.sort();

    let mut out = Vec::new();
    for name in names {
        let rel = format!("xtask/{name}");
        let text = std::fs::read_to_string(dir.join(&name))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let mut entries = 0usize;
        let mut budget = 0usize;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(_path), Some(count), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("{rel} line {}: expected `<path> <count>`", idx + 1));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("{rel} line {}: bad count `{count}`", idx + 1))?;
            entries += 1;
            budget += count;
        }
        out.push(AllowlistDebt {
            file: rel,
            entries,
            budget,
        });
    }
    Ok(out)
}

/// Renders the `summit-lint/1` document.
pub fn render(rules: &[RuleStat], allowlists: &[AllowlistDebt]) -> String {
    let mut s = String::from("{\n  \"schema\": \"summit-lint/1\",\n  \"rules\": [\n");
    for (i, r) in rules.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"violations\": {}, \"warnings\": {}, \"wall_ms\": {:.3}}}{}\n",
            quote(r.name),
            r.violations,
            r.warnings,
            r.wall_ms,
            if i + 1 < rules.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"allowlists\": [\n");
    for (i, a) in allowlists.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"file\": {}, \"entries\": {}, \"budget\": {}}}{}\n",
            quote(&a.file),
            a.entries,
            a.budget,
            if i + 1 < allowlists.len() { "," } else { "" }
        ));
    }
    let violations: usize = rules.iter().map(|r| r.violations).sum();
    let warnings: usize = rules.iter().map(|r| r.warnings).sum();
    let wall_ms: f64 = rules.iter().map(|r| r.wall_ms).sum();
    let budget: usize = allowlists.iter().map(|a| a.budget).sum();
    s.push_str(&format!(
        "  ],\n  \"totals\": {{\"violations\": {violations}, \"warnings\": {warnings}, \
         \"wall_ms\": {wall_ms:.3}, \"allowlist_budget\": {budget}}}\n}}\n"
    ));
    s
}

/// Writes the report to `<root>/BENCH_lint.json` and returns the path.
pub fn write(
    root: &Path,
    rules: &[RuleStat],
    allowlists: &[AllowlistDebt],
) -> std::io::Result<PathBuf> {
    let path = root.join("BENCH_lint.json");
    std::fs::write(&path, render(rules, allowlists))?;
    Ok(path)
}

/// Minimal JSON string quoting; report fields are repo paths and rule
/// names, so only the JSON-critical escapes are needed.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn renders_schema_rules_and_totals() {
        let rules = vec![
            RuleStat {
                name: "determinism",
                violations: 0,
                warnings: 0,
                wall_ms: 1.5,
            },
            RuleStat {
                name: "hash-order",
                violations: 2,
                warnings: 1,
                wall_ms: 0.25,
            },
        ];
        let lists = vec![AllowlistDebt {
            file: "xtask/panic_allowlist.txt".to_string(),
            entries: 1,
            budget: 2,
        }];
        let doc = render(&rules, &lists);
        assert!(doc.contains("\"schema\": \"summit-lint/1\""));
        assert!(doc.contains("\"name\": \"hash-order\", \"violations\": 2"));
        assert!(doc.contains("\"budget\": 2"));
        assert!(doc.contains("\"totals\": {\"violations\": 2, \"warnings\": 1"));
        assert!(doc.contains("\"allowlist_budget\": 2"));
    }

    #[test]
    fn quoting_escapes_json_criticals() {
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
