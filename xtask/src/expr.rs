//! Const-expression evaluator for `spec.rs` cross-checking.
//!
//! `crates/sim/src/spec.rs` defines some constants in terms of others
//! (`TOTAL_NODES * GPUS_PER_NODE`, `SYSTEM_IDLE_POWER_W / TOTAL_NODES
//! as f64`). To compare those against `paper_constants.toml` the lint
//! evaluates the right-hand side numerically: `+ - * /`, parentheses,
//! unary minus, numeric literals (underscores, scientific notation,
//! type suffixes), identifiers resolved from previously evaluated
//! constants, and `as <type>` casts (ignored — everything is f64).
//!
//! Non-numeric initializers (arrays, struct literals) simply fail to
//! evaluate and the caller skips them.

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    As,
}

fn lex(s: &str) -> Option<Vec<Tok>> {
    let chars: Vec<char> = s.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        match c {
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '0'..='9' => {
                let mut lit = String::new();
                // Integer part (underscores allowed).
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    if chars[i] != '_' {
                        lit.push(chars[i]);
                    }
                    i += 1;
                }
                // Fraction: a '.' followed by a digit (not `1..=5` or a
                // method call).
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    lit.push('.');
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        if chars[i] != '_' {
                            lit.push(chars[i]);
                        }
                        i += 1;
                    }
                } else if i < chars.len() && chars[i] == '.' {
                    // Trailing `.` as in `2.` or a range — treat `2.`
                    // followed by non-digit as "2.0" only when the next
                    // char is not another '.' (range) or ident char.
                    let next = chars.get(i + 1).copied().unwrap_or(' ');
                    if next != '.' && !next.is_alphabetic() && next != '_' {
                        lit.push_str(".0");
                        i += 1;
                    }
                }
                // Exponent.
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    let mut j = i + 1;
                    if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
                        j += 1;
                    }
                    if j < chars.len() && chars[j].is_ascii_digit() {
                        lit.push('e');
                        if chars[i + 1] == '+' || chars[i + 1] == '-' {
                            lit.push(chars[i + 1]);
                        }
                        i = j;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            lit.push(chars[i]);
                            i += 1;
                        }
                    }
                }
                // Type suffix (`u32`, `f64`, `usize`…) — skip.
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Num(lit.parse().ok()?));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    ident.push(chars[i]);
                    i += 1;
                }
                if ident == "as" {
                    toks.push(Tok::As);
                } else {
                    toks.push(Tok::Ident(ident));
                }
            }
            _ => return None, // unsupported construct ([, {, ::, …)
        }
    }
    Some(toks)
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    env: &'a BTreeMap<String, f64>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn expr(&mut self) -> Option<f64> {
        let mut acc = self.term()?;
        while let Some(op) = self.peek() {
            match op {
                Tok::Plus => {
                    self.pos += 1;
                    acc += self.term()?;
                }
                Tok::Minus => {
                    self.pos += 1;
                    acc -= self.term()?;
                }
                _ => break,
            }
        }
        Some(acc)
    }

    fn term(&mut self) -> Option<f64> {
        let mut acc = self.factor()?;
        while let Some(op) = self.peek() {
            match op {
                Tok::Star => {
                    self.pos += 1;
                    acc *= self.factor()?;
                }
                Tok::Slash => {
                    self.pos += 1;
                    acc /= self.factor()?;
                }
                _ => break,
            }
        }
        Some(acc)
    }

    fn factor(&mut self) -> Option<f64> {
        let v = self.primary()?;
        // Postfix `as <type>` casts: the type ident is consumed and the
        // value passes through unchanged (all arithmetic is f64; the
        // spec constants never rely on integer truncation).
        while matches!(self.peek(), Some(Tok::As)) {
            self.pos += 1;
            match self.bump() {
                Some(Tok::Ident(_)) => {}
                _ => return None,
            }
        }
        Some(v)
    }

    fn primary(&mut self) -> Option<f64> {
        match self.bump()?.clone() {
            Tok::Num(n) => Some(n),
            Tok::Ident(name) => self.env.get(&name).copied(),
            Tok::Minus => Some(-self.primary()?),
            Tok::LParen => {
                let v = self.expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Some(v),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// Evaluates a const initializer against known constants.
///
/// Returns `None` for anything the mini-grammar cannot handle (arrays,
/// struct literals, unknown identifiers) — callers treat that as "not a
/// scalar constant" and move on.
pub fn eval(src: &str, env: &BTreeMap<String, f64>) -> Option<f64> {
    let toks = lex(src)?;
    if toks.is_empty() {
        return None;
    }
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        env,
    };
    let v = p.expr()?;
    (p.pos == toks.len()).then_some(v)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn env(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn literals_and_arithmetic() {
        let e = env(&[]);
        assert_eq!(eval("4626", &e), Some(4626.0));
        assert_eq!(eval("4_626", &e), Some(4626.0));
        assert_eq!(eval("13.0e6", &e), Some(13.0e6));
        assert_eq!(eval("366.0 * 86_400.0", &e), Some(31_622_400.0));
        assert_eq!(eval("2 + 3 * 4", &e), Some(14.0));
        assert_eq!(eval("(2 + 3) * 4", &e), Some(20.0));
        assert_eq!(eval("-5.0 / 2.0", &e), Some(-2.5));
    }

    #[test]
    fn identifiers_and_casts() {
        let e = env(&[("TOTAL_NODES", 4626.0), ("GPUS_PER_NODE", 6.0)]);
        assert_eq!(eval("TOTAL_NODES * GPUS_PER_NODE", &e), Some(27_756.0));
        assert_eq!(eval("2.5e6 / TOTAL_NODES as f64", &e), Some(2.5e6 / 4626.0));
        assert_eq!(eval("MISSING + 1", &e), None);
    }

    #[test]
    fn rejects_non_scalar() {
        let e = env(&[]);
        assert_eq!(eval("[1, 2, 3]", &e), None);
        assert_eq!(eval("SchedulingClass { class: 1 }", &e), None);
        assert_eq!(eval("", &e), None);
    }

    #[test]
    fn numeric_suffixes_ignored() {
        let e = env(&[]);
        assert_eq!(eval("4608u32", &e), Some(4608.0));
        assert_eq!(eval("300.0f64", &e), Some(300.0));
    }
}
