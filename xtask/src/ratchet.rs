//! Allowlist-growth gate (`cargo xtask ratchet`).
//!
//! Every lint allowlist is supposed to shrink monotonically: new debt
//! must be fixed, not budgeted. The committed baseline
//! `xtask/ratchet_baseline.txt` records the *total* budget of each
//! `xtask/*_allowlist.txt` (`<allowlist path> <total>` per line, zero
//! totals allowed for emptied lists). CI runs `cargo xtask ratchet`
//! and fails when any live allowlist total exceeds its baseline — and,
//! symmetrically, when the baseline overstates a shrunken list, so the
//! recorded trajectory can never drift from reality.

use crate::json_report;
use std::collections::BTreeMap;
use std::path::Path;

/// Baseline location, relative to the workspace root.
pub const BASELINE: &str = "xtask/ratchet_baseline.txt";

/// Compares live allowlist totals against the committed baseline.
/// `Ok(errors)` lists every mismatch (empty = gate passes);
/// `Err` means the workspace itself was unreadable (exit 2).
pub fn check(root: &Path) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(root.join(BASELINE))
        .map_err(|e| format!("cannot read {BASELINE}: {e}"))?;
    let mut baseline: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(total), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "{BASELINE} line {}: expected `<allowlist> <total>`",
                idx + 1
            ));
        };
        let total: usize = total
            .parse()
            .map_err(|_| format!("{BASELINE} line {}: bad total `{total}`", idx + 1))?;
        if baseline.insert(path.to_string(), total).is_some() {
            return Err(format!(
                "{BASELINE} line {}: duplicate entry `{path}`",
                idx + 1
            ));
        }
    }

    let live = json_report::allowlist_debt(root)?;
    let mut errors = Vec::new();
    for debt in &live {
        match baseline.remove(&debt.file) {
            Some(base) if debt.budget > base => errors.push(format!(
                "{} grew: total budget {} exceeds baseline {} — fix the new site instead \
                 of widening the allowlist",
                debt.file, debt.budget, base
            )),
            Some(base) if debt.budget < base => errors.push(format!(
                "{} shrank: total budget {} is below baseline {} — ratchet {BASELINE} down \
                 to lock in the progress",
                debt.file, debt.budget, base
            )),
            Some(_) => {}
            None => errors.push(format!(
                "{} is not recorded in {BASELINE} — add `{} {}`",
                debt.file, debt.file, debt.budget
            )),
        }
    }
    for (path, total) in baseline {
        errors.push(format!(
            "{BASELINE} lists `{path}` (total {total}) but the allowlist does not exist — \
             remove the stale entry"
        ));
    }
    Ok(errors)
}
