//! Lint finding record shared by all rules.

use std::fmt;
use std::path::PathBuf;

/// One finding: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line number; 0 when the finding is file- or repo-level.
    pub line: usize,
    /// Rule identifier (`determinism`, `panic-freedom`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// True when the finding reports a broken lint run (unreadable
    /// file, malformed allowlist) rather than a code violation. The
    /// CLI exits 2 instead of 1 when any internal finding is present.
    pub internal: bool,
}

impl Violation {
    /// Convenience constructor for an ordinary code finding.
    pub fn new(
        rule: &'static str,
        path: impl Into<PathBuf>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            path: path.into(),
            line,
            rule,
            message: message.into(),
            internal: false,
        }
    }

    /// Constructor for an internal lint failure (exit code 2).
    pub fn internal(
        rule: &'static str,
        path: impl Into<PathBuf>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            internal: true,
            ..Self::new(rule, path, line, message)
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path.display(),
                self.line,
                self.rule,
                self.message
            )
        } else {
            write!(
                f,
                "{}: [{}] {}",
                self.path.display(),
                self.rule,
                self.message
            )
        }
    }
}
