//! Lint finding record shared by all rules.

use std::fmt;
use std::path::PathBuf;

/// One finding: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line number; 0 when the finding is file- or repo-level.
    pub line: usize,
    /// Rule identifier (`determinism`, `panic-freedom`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// Convenience constructor.
    pub fn new(
        rule: &'static str,
        path: impl Into<PathBuf>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            path: path.into(),
            line,
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path.display(),
                self.line,
                self.rule,
                self.message
            )
        } else {
            write!(
                f,
                "{}: [{}] {}",
                self.path.display(),
                self.rule,
                self.message
            )
        }
    }
}
