//! `cargo xtask bench-compare` — the per-stage perf-regression gate.
//!
//! Compares a freshly produced `BENCH_perf.json` against the committed
//! baseline, stage by stage, on the *dimensionless* per-stage speedups
//! (sequential / parallel seconds): raw wall-clock differs across
//! hosts, but how much a kernel gains from the pool should not silently
//! collapse between commits. A fresh stage whose speedup falls more
//! than [`TOLERANCE`] below the baseline's fails the gate; stages whose
//! sequential time sits under [`NOISE_FLOOR_S`] in either artifact are
//! reported as skipped rather than judged (a sub-5 ms histogram sum is
//! timer jitter, not a measurement); and a `"skip"` gate in either
//! artifact (one-core host, pinned pool) tolerates the whole
//! comparison — there is no parallelism to regress. The end-to-end
//! speedup and the AoS-vs-SoA coarsening ratio are judged by the same
//! tolerance, since both are dimensionless.

use summit_core::json::Json;

/// The bench schema this comparator accepts.
pub const PERF_SCHEMA: &str = "summit-perf/3";

/// Fractional speedup loss tolerated per stage (and end to end).
pub const TOLERANCE: f64 = 0.10;

/// Sequential seconds below which a stage's speedup is timer noise.
pub const NOISE_FLOOR_S: f64 = 0.005;

/// Outcome of a tolerated or passing comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareReport {
    /// Quantities judged against the tolerance (stages plus the
    /// end-to-end speedup and the AoS-vs-SoA ratio when present).
    pub compared: usize,
    /// Stage names skipped under the noise floor.
    pub skipped: Vec<String>,
    /// When set, the comparison was tolerated wholesale: one
    /// artifact's gate is `"skip"`, with the recorded reason.
    pub tolerated: Option<String>,
}

/// Extracts a numeric field, refusing `null`/string/bool (the repo's
/// `as_f64` deliberately maps `null` to `+inf` for the figure readers,
/// which must not validate here).
fn num(doc: &Json, key: &str) -> Option<f64> {
    match doc.get(key) {
        Some(Json::Num(v)) => Some(*v),
        _ => None,
    }
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    doc.get(key).and_then(Json::as_str)
}

fn check_schema(doc: &Json, which: &str, errors: &mut Vec<String>) {
    match str_field(doc, "schema") {
        Some(s) if s == PERF_SCHEMA => {}
        Some(s) => errors.push(format!(
            "{which}: schema is {s:?}, expected {PERF_SCHEMA:?} (regenerate with --bench)"
        )),
        None => errors.push(format!("{which}: missing top-level \"schema\"")),
    }
}

/// Per-stage `(name, speedup, sequential_seconds)` rows of an artifact.
fn stage_rows(doc: &Json, which: &str, errors: &mut Vec<String>) -> Vec<(String, f64, f64)> {
    let Some(arr) = doc.get("stages").and_then(Json::as_arr) else {
        errors.push(format!("{which}: missing \"stages\" array"));
        return Vec::new();
    };
    let mut out = Vec::new();
    for (idx, stage) in arr.iter().enumerate() {
        match (
            str_field(stage, "name"),
            num(stage, "speedup"),
            num(stage, "sequential_seconds"),
        ) {
            (Some(name), Some(speedup), Some(seq)) => out.push((name.to_owned(), speedup, seq)),
            _ => errors.push(format!(
                "{which}: stage #{idx} is missing name/speedup/sequential_seconds"
            )),
        }
    }
    out
}

/// Compares `fresh` against `baseline` (both `BENCH_perf.json` texts).
/// Returns the report on pass or tolerated skip, every failure
/// otherwise.
pub fn compare(baseline: &str, fresh: &str) -> Result<CompareReport, Vec<String>> {
    let base = match Json::parse(baseline) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("baseline: not valid JSON: {e}")]),
    };
    let new = match Json::parse(fresh) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("fresh: not valid JSON: {e}")]),
    };
    let mut errors: Vec<String> = Vec::new();
    check_schema(&base, "baseline", &mut errors);
    check_schema(&new, "fresh", &mut errors);
    if !errors.is_empty() {
        return Err(errors);
    }

    // A one-core host (or a pool pinned by SUMMIT_THREADS) measures no
    // parallelism; either artifact gating "skip" tolerates the run.
    for (doc, which) in [(&base, "baseline"), (&new, "fresh")] {
        if str_field(doc, "gate") == Some("skip") {
            let reason = str_field(doc, "skip_reason").unwrap_or("no skip_reason recorded");
            return Ok(CompareReport {
                compared: 0,
                skipped: Vec::new(),
                tolerated: Some(format!("{which} gate is \"skip\": {reason}")),
            });
        }
    }

    let base_stages = stage_rows(&base, "baseline", &mut errors);
    let new_stages = stage_rows(&new, "fresh", &mut errors);
    if !errors.is_empty() {
        return Err(errors);
    }

    let floor = 1.0 - TOLERANCE;
    let mut compared = 0usize;
    let mut skipped: Vec<String> = Vec::new();
    for (name, base_speedup, base_seq) in &base_stages {
        let Some((_, new_speedup, new_seq)) = new_stages.iter().find(|(n, ..)| n == name) else {
            errors.push(format!(
                "fresh artifact lost stage \"{name}\" (present in baseline)"
            ));
            continue;
        };
        if *base_seq < NOISE_FLOOR_S || *new_seq < NOISE_FLOOR_S {
            skipped.push(name.clone());
            continue;
        }
        compared += 1;
        if *new_speedup < base_speedup * floor {
            errors.push(format!(
                "stage \"{name}\" regressed: speedup {new_speedup:.3}x < {:.3}x \
                 (baseline {base_speedup:.3}x minus {:.0}% tolerance)",
                base_speedup * floor,
                TOLERANCE * 100.0
            ));
        }
    }

    if let (Some(b), Some(n)) = (num(&base, "speedup"), num(&new, "speedup")) {
        compared += 1;
        if n < b * floor {
            errors.push(format!(
                "end-to-end speedup regressed: {n:.3}x < {:.3}x \
                 (baseline {b:.3}x minus {:.0}% tolerance)",
                b * floor,
                TOLERANCE * 100.0
            ));
        }
    }
    let ratio = |doc: &Json| match doc.get("aos_soa") {
        Some(aos) => num(aos, "ratio"),
        None => None,
    };
    if let (Some(b), Some(n)) = (ratio(&base), ratio(&new)) {
        compared += 1;
        if n < b * floor {
            errors.push(format!(
                "AoS-vs-SoA coarsening ratio regressed: {n:.3}x < {:.3}x \
                 (baseline {b:.3}x minus {:.0}% tolerance)",
                b * floor,
                TOLERANCE * 100.0
            ));
        }
    }

    if errors.is_empty() {
        Ok(CompareReport {
            compared,
            skipped,
            tolerated: None,
        })
    } else {
        Err(errors)
    }
}

/// One-line human summary of a passing/tolerated comparison.
pub fn summary(report: &CompareReport) -> String {
    match &report.tolerated {
        Some(reason) => format!("tolerated: {reason}"),
        None if report.skipped.is_empty() => {
            format!("{} quantities within tolerance", report.compared)
        }
        None => format!(
            "{} quantities within tolerance ({} stage(s) under the noise floor: {})",
            report.compared,
            report.skipped.len(),
            report.skipped.join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    /// A minimal summit-perf/3 artifact with one engine stage and one
    /// kernel stage under the noise floor.
    fn artifact(gate: &str, engine_speedup: f64, speedup: f64, ratio: f64) -> String {
        format!(
            r#"{{
  "schema": "summit-perf/3",
  "gate": "{gate}",
  "skip_reason": {reason},
  "speedup": {speedup},
  "aos_soa": {{"rows_seconds": 2.0, "columns_seconds": 1.0, "ratio": {ratio}}},
  "stages": [
    {{"name": "engine_tick", "speedup": {engine_speedup}, "sequential_seconds": 1.5}},
    {{"name": "fft", "speedup": 0.3, "sequential_seconds": 0.0001}}
  ]
}}"#,
            reason = if gate == "skip" {
                "\"single-core host (1 CPU): no parallelism to measure\""
            } else {
                "null"
            },
        )
    }

    #[test]
    fn identical_artifacts_pass() {
        let doc = artifact("pass", 3.0, 2.0, 1.8);
        let report = compare(&doc, &doc).unwrap();
        // engine_tick + end-to-end + aos ratio; fft sits under the floor.
        assert_eq!(report.compared, 3);
        assert_eq!(report.skipped, vec!["fft".to_string()]);
        assert!(report.tolerated.is_none());
        assert!(summary(&report).contains("noise floor"));
    }

    #[test]
    fn small_drift_is_within_tolerance() {
        let base = artifact("pass", 3.0, 2.0, 1.8);
        let fresh = artifact("pass", 2.75, 1.85, 1.65);
        assert!(compare(&base, &fresh).is_ok());
    }

    #[test]
    fn per_stage_regression_fails() {
        let base = artifact("pass", 3.0, 2.0, 1.8);
        let fresh = artifact("pass", 1.0, 2.0, 1.8);
        let errors = compare(&base, &fresh).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("engine_tick")),
            "{errors:?}"
        );
    }

    #[test]
    fn noise_floor_stage_never_judged() {
        // fft's speedup is 0.3x in both artifacts; it must be skipped,
        // not failed, because its timing is sub-noise-floor.
        let doc = artifact("pass", 3.0, 2.0, 1.8);
        let report = compare(&doc, &doc).unwrap();
        assert!(report.skipped.contains(&"fft".to_string()));
    }

    #[test]
    fn end_to_end_and_ratio_regressions_fail() {
        let base = artifact("pass", 3.0, 2.0, 1.8);
        let slow = artifact("pass", 3.0, 1.0, 1.8);
        assert!(compare(&base, &slow)
            .unwrap_err()
            .iter()
            .any(|e| e.contains("end-to-end")));
        let unranked = artifact("pass", 3.0, 2.0, 1.0);
        assert!(compare(&base, &unranked)
            .unwrap_err()
            .iter()
            .any(|e| e.contains("AoS-vs-SoA")));
    }

    #[test]
    fn skip_gate_tolerates_either_side() {
        let base = artifact("pass", 3.0, 2.0, 1.8);
        let skip = artifact("skip", 1.0, 1.0, 1.8);
        for (a, b, which) in [(&base, &skip, "fresh"), (&skip, &base, "baseline")] {
            let report = compare(a, b).unwrap();
            let reason = report.tolerated.unwrap();
            assert!(reason.contains(which), "{reason}");
            assert!(reason.contains("single-core host"), "{reason}");
        }
    }

    #[test]
    fn lost_stage_fails() {
        let base = artifact("pass", 3.0, 2.0, 1.8);
        let fresh = base.replace("engine_tick", "renamed_tick");
        let errors = compare(&base, &fresh).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("lost stage")),
            "{errors:?}"
        );
    }

    #[test]
    fn wrong_schema_and_bad_json_fail() {
        let base = artifact("pass", 3.0, 2.0, 1.8);
        let old = base.replace("summit-perf/3", "summit-perf/2");
        assert!(compare(&old, &base)
            .unwrap_err()
            .iter()
            .any(|e| e.contains("summit-perf/2")));
        assert!(compare(&base, "not json").unwrap_err()[0].contains("not valid JSON"));
    }
}
