//! Fixture smoke test: covers every experiment module.

#[test]
fn all_experiments_run() {
    let _ = fig01::run();
    let _ = tables::run();
}
