//! Fixture smoke test: iterates the registry, covering every study.

#[test]
fn all_registered_experiments_run() {
    for study in REGISTRY {
        let _ = study.name();
    }
}
