//! Fixture: every public exporter references the schema constant.

pub const TRACE_SCHEMA: &str = "summit-trace/1";

pub fn write_chrome_json(out: &mut String) {
    out.push_str(TRACE_SCHEMA);
}

pub fn write_folded(out: &mut String) {
    out.push('#');
    out.push_str(TRACE_SCHEMA);
}

fn write_helper(_out: &mut String) {
    // Private helpers are exempt from the schema-tag requirement.
}
