//! Fixture: parallel reductions with order-stable float handling.

use rayon::prelude::*;

/// Float totals go through the exact merge tree.
pub fn total_power(values: &[f64]) -> f64 {
    values.par_iter().map(|v| v * 2.0).sum_stable()
}

/// Integer sums are associative; plain `sum` is fine.
pub fn total_count(ids: &[u64]) -> u64 {
    ids.par_iter().map(|v| v + 1).sum::<u64>()
}

/// Columnar reducers gather each metric column and fold it through
/// the facade's exact merge tree.
pub fn fold_column(column: &[f32]) -> f64 {
    column.par_iter().map(|v| f64::from(*v)).sum_stable()
}
