//! Fixture analysis crate: seeded, panic-free library code.

/// Mean of the finite samples (NaN when none).
pub fn mean(xs: &[f64]) -> f64 {
    let finite: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    finite.iter().sum::<f64>() / finite.len() as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn mean_of_one() {
        // Unit tests may unwrap freely; the ratchet masks this module.
        let ord = super::mean(&[2.0]).partial_cmp(&2.0).unwrap();
        assert_eq!(ord, std::cmp::Ordering::Equal);
    }
}
