//! Runner for fig01.

fn main() {}
