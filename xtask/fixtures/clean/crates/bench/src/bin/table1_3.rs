//! Runner for the `tables` experiment (historical name).

fn main() {}
