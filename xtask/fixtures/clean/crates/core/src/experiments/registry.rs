//! Fixture registry: every module's Study is entered.

pub static REGISTRY: &[&str] = &[];

/// Entries (token-level stand-ins for `&fig01::Study` etc.).
pub fn entries() -> usize {
    let _ = (fig01::Study, tables::Study);
    2
}
