//! Fixture experiment registry: fully wired.

pub mod fig01;
pub mod tables;
