//! Fixture experiment registry: fully wired.

pub mod registry;

pub mod fig01;
pub mod tables;
