//! Wired experiment.

/// Runs it.
pub fn run() -> usize {
    1
}
