//! Wired experiment.

/// Runs it.
pub fn run() -> usize {
    let _obs = summit_obs::span("summit_core_fig01");
    1
}

/// Registry adapter.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig01"
    }
}
