//! Aliased experiment: its runner binary is named `table1_3`.

/// Runs it.
pub fn run() -> usize {
    13
}
