//! Wired experiment (renders constants; no `run` entry point).

/// Renders it.
pub fn render() -> usize {
    let _obs = summit_obs::span("summit_core_tables");
    13
}

/// Registry adapter.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "tables"
    }
}
