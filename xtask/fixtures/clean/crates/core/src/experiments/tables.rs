//! Aliased experiment: its runner binary is named `table1_3`.

/// Runs it.
pub fn run() -> usize {
    let _obs = summit_obs::span("summit_core_tables");
    13
}
