//! Pipeline with fully instrumented entry points.

/// Instrumented entry point.
pub fn run_scenario() -> usize {
    let _obs = summit_obs::span("summit_core_run_scenario");
    1
}

/// Helper that needs no span (not a `run_*` entry point).
pub fn helper() -> usize {
    2
}

/// Streaming entry point, instrumented like every `run_*`.
pub fn run_streaming() -> usize {
    let _obs = summit_obs::span("summit_core_run_streaming");
    3
}
