//! Fixture: narrowing conversions with an explicit policy.

/// The one budgeted quantization cast (cast_allowlist.txt).
pub fn quantize(v: f64) -> f32 {
    v as f32
}

/// Checked narrowing: out-of-range indexes surface as `None`.
pub fn index_u16(i: usize) -> Option<u16> {
    u16::try_from(i).ok()
}
