//! Fixture: hash-container use with every iteration properly ordered.

use std::collections::{BTreeMap, HashMap};

/// Draining into a BTreeMap fixes the order in the same statement.
pub fn ordered(map: HashMap<u32, u32>) -> BTreeMap<u32, u32> {
    map.into_iter().collect::<BTreeMap<u32, u32>>()
}

/// Collect-then-sort: the binding is sorted before anything reads it.
pub fn sorted_keys(map: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = map.keys().copied().collect();
    keys.sort_unstable();
    keys
}

/// Order-free terminals never depend on visit order.
pub fn occupancy(map: &HashMap<u32, u32>) -> (usize, bool) {
    (map.values().count(), map.keys().all(|k| *k < 1000))
}
