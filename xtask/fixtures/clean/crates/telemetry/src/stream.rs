//! Fixture: one direct-thread site, exactly covered by the allowlist.

/// Fans frames in over a scoped collector thread.
pub fn fan_in(frames: &[u32]) -> u32 {
    let mut total = 0;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| frames.iter().sum::<u32>());
        if let Ok(sum) = handle.join() {
            total = sum;
        }
    });
    total
}
