//! Fixture engine: deterministic, names the spec constant, and carries
//! exactly the one panic site its allowlist entry budgets.

use crate::spec;

/// Ticks the fixture engine over the full floor.
pub fn tick(xs: &[f64]) -> f64 {
    let nodes = spec::TOTAL_NODES;
    xs.first().copied().expect("engine requires at least one node") + nodes as f64
}
