//! Fixture checks: exactly the one budgeted assert site; the
//! `debug_assert!` and the test-module assert must not count.

/// Validates a window length.
pub fn validate(len: usize) -> usize {
    assert!(len > 0, "window must be non-empty");
    debug_assert!(len < 1_000_000);
    len
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked_out() {
        assert_eq!(super::validate(3), 3);
    }
}
