//! Fixture spec in agreement with paper_constants.toml.

/// Total compute nodes.
pub const TOTAL_NODES: usize = 4626;

/// GPUs per node.
pub const GPUS_PER_NODE: usize = 6;

/// Scheduling class shape mirroring the real spec.
pub struct SchedulingClass {
    /// Class number.
    pub class: u8,
    /// Inclusive node range.
    pub node_range: (u32, u32),
    /// Walltime cap (hours).
    pub max_walltime_h: f64,
}

/// Table 3 subset.
pub const SCHEDULING_CLASSES: [SchedulingClass; 1] = [SchedulingClass {
    class: 1,
    node_range: (2765, 4608),
    max_walltime_h: 24.0,
}];
