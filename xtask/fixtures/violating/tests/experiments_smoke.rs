//! Fixture smoke test: covers fig01 only.

#[test]
fn fig01_runs() {
    let _ = fig01::run();
}
