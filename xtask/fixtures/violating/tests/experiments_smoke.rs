//! Fixture smoke test: hand-lists fig01 instead of iterating the
//! registry — the registry rule must flag the missing iteration.

#[test]
fn fig01_runs() {
    let _ = fig01::run();
}
