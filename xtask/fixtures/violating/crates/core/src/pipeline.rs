//! Pipeline with one instrumented and one bare entry point.

/// Instrumented entry point.
pub fn run_good() -> usize {
    let _obs = summit_obs::span("summit_core_run_good");
    1
}

/// Uninstrumented entry point: the obs-coverage rule must flag it.
pub fn run_bad() -> usize {
    2
}

/// Uninstrumented streaming entry point: flagged like any `run_*`.
pub fn run_streaming_bad() -> usize {
    3
}
