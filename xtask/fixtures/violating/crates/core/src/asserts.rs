//! Fixture asserts: two sites against a budget of one, plus exempt
//! `debug_assert_ne!` and test-module asserts.

/// Checks a count, asserting twice on the way.
pub fn clamp(n: usize) -> usize {
    assert!(n > 0, "count must be positive");
    assert_eq!(n % 2, 0, "count must be even");
    debug_assert_ne!(n, usize::MAX);
    n
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked_out() {
        assert_eq!(super::clamp(2), 2);
    }
}
