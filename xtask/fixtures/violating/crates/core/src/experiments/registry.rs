//! Fixture registry: fig99 is deliberately missing.

pub static REGISTRY: &[&str] = &[];

/// Entries (token-level stand-ins for `&fig01::Study`).
pub fn entries() -> usize {
    let _ = fig01::Study;
    1
}
