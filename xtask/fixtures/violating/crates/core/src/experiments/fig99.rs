//! Orphan experiment: not declared, no runner, no smoke coverage.

/// Runs it.
pub fn run() -> usize {
    99
}
