//! Fixture experiment registry: fig99 is deliberately unregistered.

pub mod fig01;
