//! Fixture experiment registry: fig99 is deliberately unregistered.

pub mod registry;

pub mod fig01;
