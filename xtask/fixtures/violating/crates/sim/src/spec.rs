//! Fixture spec with deliberate drift from paper_constants.toml.

/// Wrong on purpose: the TOML transcribes 4,626.
pub const TOTAL_NODES: usize = 4627;

/// Not transcribed in the TOML on purpose.
pub const UNTRACKED_CONST: f64 = 9.9e6;

/// Scheduling class shape mirroring the real spec.
pub struct SchedulingClass {
    /// Class number.
    pub class: u8,
    /// Inclusive node range.
    pub node_range: (u32, u32),
    /// Walltime cap (hours).
    pub max_walltime_h: f64,
}

/// One class, with a wrong walltime (the TOML says 24.0).
pub const SCHEDULING_CLASSES: [SchedulingClass; 1] = [SchedulingClass {
    class: 1,
    node_range: (2765, 4608),
    max_walltime_h: 12.0,
}];
