//! Fixture engine: wall-clock read, magic literal, under-budget panics.

/// Ticks the fixture engine.
pub fn tick(xs: &[f64]) -> f64 {
    let _t = std::time::Instant::now();
    let nodes = 4626;
    xs.iter().copied().next().expect("non-empty") + nodes as f64
}
