//! Fixture: `write_untagged` respells the schema literal instead of
//! referencing `TRACE_SCHEMA`, so its output cannot be version-gated.

pub const TRACE_SCHEMA: &str = "summit-trace/1";

pub fn write_tagged(out: &mut String) {
    out.push_str(TRACE_SCHEMA);
}

pub fn write_untagged(out: &mut String) {
    // Strings are masked before lexing: this must still be flagged.
    out.push_str("summit-trace/1");
}
