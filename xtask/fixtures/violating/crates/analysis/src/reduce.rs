//! Fixture: non-associative float reductions in parallel pipelines.

use rayon::prelude::*;

/// Bare float `sum` over a parallel iterator: grouping-dependent.
pub fn total_power(values: &[f64]) -> f64 {
    values.par_iter().copied().sum()
}

/// A float fold is just as grouping-dependent as a float sum.
pub fn folded_power(values: &[f64]) -> f64 {
    values.par_iter().map(|v| *v).fold(|| 0.0f64, |acc, v| acc + v)
}
