//! Fixture: non-associative float reductions in parallel pipelines.

use rayon::prelude::*;

/// Bare float `sum` over a parallel iterator: grouping-dependent.
pub fn total_power(values: &[f64]) -> f64 {
    values.par_iter().copied().sum()
}

/// A float fold is just as grouping-dependent as a float sum.
pub fn folded_power(values: &[f64]) -> f64 {
    values.par_iter().map(|v| *v).fold(|| 0.0f64, |acc, v| acc + v)
}

/// Columnar hot path gone wrong: folding one metric column into a
/// float accumulator on the pool is grouping-dependent too.
pub fn fold_column(column: &[f32]) -> f64 {
    column.par_iter().fold(|| 0.0f64, |acc, v| acc + f64::from(*v))
}
