//! Fixture analysis crate: entropy RNG, unlisted unwrap, literal index.

/// Samples with a thread-local RNG (banned).
pub fn sample(xs: &[f64]) -> f64 {
    let mut rng = rand::thread_rng();
    let first = xs[0];
    first + xs.iter().copied().reduce(f64::max).unwrap() + rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked_out() {
        // Test-module panics are exempt from the ratchet.
        super::sample(&[1.0]).partial_cmp(&0.0).unwrap();
    }
}
