//! Fixture: iteration-order hazards over hash containers.

use std::collections::HashMap;

/// A for-loop walks the map in hash order straight into the output.
pub fn totals(map: HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for v in map.values() {
        out.push(*v);
    }
    out
}

/// An unsorted chain leaks hash order into the returned vector.
pub fn keys(map: &HashMap<u32, u32>) -> Vec<u32> {
    map.keys().copied().collect()
}

/// Sanitized control: sorted after collect, must NOT be flagged.
pub fn sorted_keys(map: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = map.keys().copied().collect();
    keys.sort_unstable();
    keys
}
