//! Fixture: two unbudgeted direct-thread sites; the test-module site
//! must not be counted.

/// Spawns a detached worker — bypasses the pool.
pub fn leak_a_thread() {
    let handle = std::thread::spawn(|| ());
    drop(handle);
}

/// Builds a named worker — also bypasses the pool.
pub fn build_a_thread() {
    let builder = std::thread::Builder::new();
    drop(builder);
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_in_tests_are_free() {
        std::thread::scope(|_| ());
    }
}
