//! Fixture: bare narrowing casts with no budget behind them.

/// Silently rounds: `f64` to `f32` loses half the mantissa.
pub fn quantize(v: f64) -> f32 {
    v as f32
}

/// Silently wraps: a count past 65535 comes back small.
pub fn index(i: usize) -> u16 {
    i as u16
}
