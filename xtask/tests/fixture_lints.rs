//! Fixture-based tests for the lint rules: each rule must fire exactly
//! where the `violating` fixture plants a defect, and stay silent on
//! the `clean` fixture. The fixtures are mini-workspaces under
//! `xtask/fixtures/` that only the rule functions read — cargo never
//! compiles them, and the real lint run never sweeps them.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use xtask::rules::{
    determinism, float_reduction, hash_order, lossy_cast, obs_coverage, panic_freedom, parallelism,
    registry, spec_constants,
};
use xtask::violation::Violation;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// `(path, line)` pairs, sorted, for compact exact-location asserts.
fn locations(violations: &[Violation]) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = violations
        .iter()
        .map(|v| (v.path.display().to_string(), v.line))
        .collect();
    out.sort();
    out
}

fn message_at<'a>(violations: &'a [Violation], path: &str, line: usize) -> &'a str {
    &violations
        .iter()
        .find(|v| v.path == Path::new(path) && v.line == line)
        .unwrap_or_else(|| panic!("expected a finding at {path}:{line}"))
        .message
}

// --- determinism -------------------------------------------------------

#[test]
fn determinism_flags_wall_clock_and_entropy() {
    let v = determinism::check(&fixture("violating"));
    assert_eq!(
        locations(&v),
        vec![
            ("crates/analysis/src/lib.rs".into(), 5),
            ("crates/sim/src/engine.rs".into(), 5),
        ]
    );
    assert!(message_at(&v, "crates/analysis/src/lib.rs", 5).contains("thread_rng"));
    assert!(message_at(&v, "crates/sim/src/engine.rs", 5).contains("Instant::now"));
}

#[test]
fn determinism_clean_fixture_passes() {
    assert_eq!(determinism::check(&fixture("clean")), vec![]);
}

// --- panic-freedom -----------------------------------------------------

#[test]
fn panic_freedom_ratchets_both_directions() {
    let (errors, warnings) = panic_freedom::check(&fixture("violating"), false);

    // One over-budget panic site (analysis unwrap, no allowlist entry),
    // two stale panic-allowlist entries (engine.rs under budget, gone.rs
    // missing entirely), two assert sites against a budget of one, and
    // one orphaned assert-allowlist entry. Test-module sites and the
    // `debug_assert_ne!` must NOT be counted.
    assert_eq!(
        locations(&errors),
        vec![
            ("crates/analysis/src/lib.rs".into(), 7),
            ("crates/core/src/asserts.rs".into(), 6),
            ("crates/core/src/asserts.rs".into(), 7),
            ("xtask/assert_allowlist.txt".into(), 0),
            ("xtask/panic_allowlist.txt".into(), 0),
            ("xtask/panic_allowlist.txt".into(), 0),
        ]
    );
    assert!(message_at(&errors, "crates/analysis/src/lib.rs", 7).contains(".unwrap()"));
    assert!(message_at(&errors, "crates/core/src/asserts.rs", 6).contains("`assert!(`"));
    assert!(message_at(&errors, "crates/core/src/asserts.rs", 7).contains("`assert_eq!(`"));
    assert!(errors
        .iter()
        .filter(|v| v.path == Path::new("xtask/assert_allowlist.txt"))
        .all(|v| v.message.contains("crates/analysis/src/missing.rs")
            && v.message.contains("remove it")));
    let stale: Vec<&str> = errors
        .iter()
        .filter(|v| v.path == Path::new("xtask/panic_allowlist.txt"))
        .map(|v| v.message.as_str())
        .collect();
    assert!(stale
        .iter()
        .any(|m| m.contains("crates/sim/src/engine.rs") && m.contains("ratchet the budget down")));
    assert!(stale
        .iter()
        .any(|m| m.contains("crates/core/src/gone.rs") && m.contains("remove it")));

    // Literal indexing is advisory by default...
    assert_eq!(
        locations(&warnings),
        vec![("crates/analysis/src/lib.rs".into(), 6)]
    );

    // ...and an error under --strict-indexing.
    let (strict_errors, strict_warnings) = panic_freedom::check(&fixture("violating"), true);
    assert!(strict_warnings.is_empty());
    assert!(strict_errors
        .iter()
        .any(|v| v.rule == "unchecked-indexing" && v.line == 6));
}

#[test]
fn panic_freedom_clean_fixture_passes() {
    // The clean fixture's engine.rs has exactly the one panic site and
    // checks.rs exactly the one assert site their allowlist entries
    // budget — the exact-match path of both ratchets.
    let (errors, warnings) = panic_freedom::check(&fixture("clean"), true);
    assert_eq!(errors, vec![]);
    assert_eq!(warnings, vec![]);
}

// --- spec-constants ----------------------------------------------------

#[test]
fn spec_constants_detects_drift() {
    let v = spec_constants::check(&fixture("violating"));
    assert_eq!(
        locations(&v),
        vec![
            ("crates/sim/src/engine.rs".into(), 6), // magic literal 4626
            ("crates/sim/src/spec.rs".into(), 4),   // TOTAL_NODES mismatch
            ("crates/sim/src/spec.rs".into(), 7),   // UNTRACKED_CONST not in TOML
            ("paper_constants.toml".into(), 5),     // total_gpus has no const
            ("paper_constants.toml".into(), 10),    // class1 walltime mismatch
        ]
    );
    assert!(message_at(&v, "crates/sim/src/spec.rs", 4).contains("4626"));
    assert!(message_at(&v, "crates/sim/src/spec.rs", 7).contains("UNTRACKED_CONST"));
    assert!(message_at(&v, "paper_constants.toml", 5).contains("TOTAL_GPUS"));
    assert!(message_at(&v, "paper_constants.toml", 10).contains("max_walltime_h"));
    assert!(message_at(&v, "crates/sim/src/engine.rs", 6).contains("total_nodes"));
}

#[test]
fn spec_constants_clean_fixture_passes() {
    assert_eq!(spec_constants::check(&fixture("clean")), vec![]);
}

// --- registry ----------------------------------------------------------

#[test]
fn registry_requires_full_wiring() {
    let v = registry::check(&fixture("violating"));
    // fig99 exists as a module file but is not declared, implements no
    // Experiment adapter and never enters REGISTRY; additionally the
    // smoke test hand-lists modules instead of iterating the registry.
    // fig01 is fully wired and must not be flagged.
    assert_eq!(v.len(), 4);
    assert_eq!(
        locations(&v),
        vec![
            ("crates/core/src/experiments/fig99.rs".into(), 0),
            ("crates/core/src/experiments/mod.rs".into(), 0),
            ("crates/core/src/experiments/registry.rs".into(), 0),
            ("tests/experiments_smoke.rs".into(), 0),
        ]
    );
    assert!(message_at(&v, "crates/core/src/experiments/fig99.rs", 0).contains("impl Experiment"));
    assert!(message_at(&v, "crates/core/src/experiments/mod.rs", 0).contains("fig99"));
    assert!(message_at(&v, "crates/core/src/experiments/registry.rs", 0).contains("REGISTRY"));
    assert!(message_at(&v, "tests/experiments_smoke.rs", 0).contains("iterate"));
}

#[test]
fn registry_clean_fixture_passes() {
    // Every module has an adapter, a REGISTRY entry, and the smoke test
    // iterates the registry.
    assert_eq!(registry::check(&fixture("clean")), vec![]);
}

// --- obs-coverage ------------------------------------------------------

#[test]
fn obs_coverage_flags_bare_entry_points() {
    let v = obs_coverage::check(&fixture("violating"));
    // `run_bad` and `run_streaming_bad` in pipeline.rs open no span;
    // the fig99 experiment file has none anywhere; `write_untagged`
    // respells the trace schema instead of referencing `TRACE_SCHEMA`.
    // `run_good`, fig01 and `write_tagged` are correct and must not be
    // flagged.
    assert_eq!(
        locations(&v),
        vec![
            ("crates/core/src/experiments/fig99.rs".into(), 0),
            ("crates/core/src/pipeline.rs".into(), 10),
            ("crates/core/src/pipeline.rs".into(), 15),
            ("crates/obs/src/trace.rs".into(), 10),
        ]
    );
    assert!(message_at(&v, "crates/core/src/pipeline.rs", 10).contains("run_bad"));
    assert!(message_at(&v, "crates/core/src/pipeline.rs", 15).contains("run_streaming_bad"));
    assert!(message_at(&v, "crates/core/src/experiments/fig99.rs", 0).contains("fig99"));
    assert!(message_at(&v, "crates/obs/src/trace.rs", 10).contains("write_untagged"));
}

#[test]
fn obs_coverage_clean_fixture_passes() {
    assert_eq!(obs_coverage::check(&fixture("clean")), vec![]);
}

// --- parallelism -------------------------------------------------------

#[test]
fn parallelism_flags_unbudgeted_thread_sites() {
    let v = parallelism::check(&fixture("violating"));
    // Two direct-thread sites over a zero budget plus one orphaned
    // allowlist entry; the `#[cfg(test)]` scope site must NOT count.
    assert_eq!(
        locations(&v),
        vec![
            ("crates/telemetry/src/stream.rs".into(), 6),
            ("crates/telemetry/src/stream.rs".into(), 12),
            ("xtask/thread_allowlist.txt".into(), 0),
        ]
    );
    assert!(message_at(&v, "crates/telemetry/src/stream.rs", 6).contains("thread::spawn"));
    assert!(message_at(&v, "crates/telemetry/src/stream.rs", 12).contains("thread::Builder"));
    assert!(
        message_at(&v, "xtask/thread_allowlist.txt", 0).contains("crates/telemetry/src/gone.rs")
    );
}

#[test]
fn parallelism_clean_fixture_passes() {
    // The clean fixture's stream.rs has exactly the one scoped-thread
    // site its allowlist entry budgets — the exact-match ratchet path.
    assert_eq!(parallelism::check(&fixture("clean")), vec![]);
}

// --- hash-order --------------------------------------------------------

#[test]
fn hash_order_flags_unordered_iteration() {
    let v = hash_order::check(&fixture("violating"));
    // `totals` walks the map with a for-loop, `keys` leaks hash order
    // through an unsorted chain; `sorted_keys` sorts after collect and
    // must NOT be flagged. The allowlist also carries a stale entry.
    assert_eq!(
        locations(&v),
        vec![
            ("crates/telemetry/src/maps.rs".into(), 8),
            ("crates/telemetry/src/maps.rs".into(), 16),
            ("xtask/hash_order_allowlist.txt".into(), 0),
        ]
    );
    assert!(message_at(&v, "crates/telemetry/src/maps.rs", 8).contains(".values()"));
    assert!(message_at(&v, "crates/telemetry/src/maps.rs", 16).contains(".keys()"));
    assert!(message_at(&v, "xtask/hash_order_allowlist.txt", 0)
        .contains("crates/telemetry/src/gone.rs"));
}

#[test]
fn hash_order_clean_fixture_passes() {
    assert_eq!(hash_order::check(&fixture("clean")), vec![]);
}

// --- float-reduction ---------------------------------------------------

#[test]
fn float_reduction_flags_par_float_sums_and_folds() {
    let v = float_reduction::check(&fixture("violating"));
    assert_eq!(
        locations(&v),
        vec![
            ("crates/analysis/src/reduce.rs".into(), 7),
            ("crates/analysis/src/reduce.rs".into(), 12),
            ("crates/analysis/src/reduce.rs".into(), 18),
        ]
    );
    assert!(message_at(&v, "crates/analysis/src/reduce.rs", 7).contains("sum_stable"));
    assert!(message_at(&v, "crates/analysis/src/reduce.rs", 12).contains("fold"));
    // The columnar reducer (a per-metric-column float fold) is just as
    // grouping-dependent as the row-structured ones.
    assert!(message_at(&v, "crates/analysis/src/reduce.rs", 18).contains("fold"));
}

#[test]
fn float_reduction_clean_fixture_passes() {
    // `sum_stable()`, integer sums, and the columnar gather-then-
    // sum_stable reducer are all approved.
    assert_eq!(float_reduction::check(&fixture("clean")), vec![]);
}

// --- lossy-cast --------------------------------------------------------

#[test]
fn lossy_cast_flags_unbudgeted_narrowing() {
    let v = lossy_cast::check(&fixture("violating"));
    assert_eq!(
        locations(&v),
        vec![
            ("crates/telemetry/src/quantize.rs".into(), 5),
            ("crates/telemetry/src/quantize.rs".into(), 10),
        ]
    );
    assert!(message_at(&v, "crates/telemetry/src/quantize.rs", 5).contains("f32"));
    assert!(message_at(&v, "crates/telemetry/src/quantize.rs", 10).contains("u16"));
}

#[test]
fn lossy_cast_clean_fixture_passes() {
    // The one quantization cast is exactly covered by its budget.
    assert_eq!(lossy_cast::check(&fixture("clean")), vec![]);
}
