//! Edge-case tests for the lint engine's text-processing internals:
//! the comment/string masker every rule depends on, the const-expression
//! evaluator, and the TOML-subset parser.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::BTreeMap;
use xtask::source::mask_comments_and_strings;
use xtask::{expr, toml_lite};

// --- source::mask_comments_and_strings ---------------------------------

#[test]
fn mask_preserves_line_structure() {
    let src = "a // one\nb /* two\nthree */ c\n\"four\nfive\"";
    let masked = mask_comments_and_strings(src);
    assert_eq!(masked.lines().count(), src.lines().count());
    for (m, s) in masked.lines().zip(src.lines()) {
        assert_eq!(m.len(), s.len(), "masking must not shift columns");
    }
}

#[test]
fn mask_blanks_raw_strings_with_hash_depth() {
    let src = r####"let a = r#"HashMap"#; let b = r##"as u16 "# still"##;"####;
    let masked = mask_comments_and_strings(src);
    assert!(!masked.contains("HashMap"), "raw string payload must go");
    assert!(
        !masked.contains("as u16"),
        "deep raw string payload must go"
    );
    assert!(
        !masked.contains("still"),
        "a lone `\"#` must not close an `r##` string"
    );
    assert!(masked.contains("let a"), "code around the strings survives");
    assert!(masked.contains("let b"));
}

#[test]
fn mask_handles_nested_block_comments() {
    let src = "before /* outer /* inner */ still-comment */ after";
    let masked = mask_comments_and_strings(src);
    assert!(masked.contains("before"));
    assert!(masked.contains("after"), "nesting must track depth");
    assert!(!masked.contains("still-comment"));
    assert!(!masked.contains("inner"));
}

#[test]
fn mask_keeps_char_and_byte_literals_from_confusing_strings() {
    // A '"' char literal must not open a string; lifetimes must not be
    // treated as unterminated char literals.
    let src = "let q = '\"'; let b = b'\\''; fn f<'a>(x: &'a str) { iter() }";
    let masked = mask_comments_and_strings(src);
    assert!(masked.contains("iter"), "code after the literals survives");
    assert!(masked.contains("fn f"));
}

#[test]
fn mask_survives_unterminated_string() {
    // A file that ends inside a string literal must still mask cleanly
    // (the rest of the file is string content, not code).
    let src = "let ok = 1;\nlet s = \"unterminated HashMap";
    let masked = mask_comments_and_strings(src);
    assert!(masked.contains("let ok"));
    assert!(!masked.contains("HashMap"));
    assert_eq!(masked.lines().count(), 2);
}

#[test]
fn mask_handles_escaped_quotes() {
    let src = r#"let s = "he said \"HashMap\" loudly"; tail()"#;
    let masked = mask_comments_and_strings(src);
    assert!(!masked.contains("HashMap"));
    assert!(masked.contains("tail"), "escape must not eat the closer");
}

// --- expr::eval --------------------------------------------------------

#[test]
fn expr_evaluates_arithmetic_with_precedence() {
    let env = BTreeMap::new();
    assert_eq!(expr::eval("1 + 2 * 3", &env), Some(7.0));
    assert_eq!(expr::eval("(1 + 2) * 3", &env), Some(9.0));
    assert_eq!(expr::eval("-4 / 2", &env), Some(-2.0));
    assert_eq!(expr::eval("10 - 2 - 3", &env), Some(5.0), "left assoc");
}

#[test]
fn expr_resolves_identifiers_and_casts() {
    let mut env = BTreeMap::new();
    env.insert("TOTAL_NODES".to_string(), 4608.0);
    env.insert("GPUS_PER_NODE".to_string(), 6.0);
    assert_eq!(
        expr::eval("TOTAL_NODES * GPUS_PER_NODE", &env),
        Some(27_648.0)
    );
    assert_eq!(
        expr::eval("TOTAL_NODES as f64 / 2.0", &env),
        Some(2304.0),
        "`as <type>` casts are transparent"
    );
}

#[test]
fn expr_parses_literal_shapes() {
    let env = BTreeMap::new();
    assert_eq!(expr::eval("1_000_000", &env), Some(1e6));
    assert_eq!(expr::eval("2.5e3", &env), Some(2500.0));
    assert_eq!(expr::eval("42u64", &env), Some(42.0), "type suffix");
}

#[test]
fn expr_rejects_what_it_cannot_evaluate() {
    let env = BTreeMap::new();
    assert_eq!(expr::eval("UNKNOWN + 1", &env), None, "unbound ident");
    assert_eq!(expr::eval("[1, 2, 3]", &env), None, "array literal");
    assert_eq!(expr::eval("1 +", &env), None, "trailing operator");
    assert_eq!(expr::eval("", &env), None);
}

// --- toml_lite ---------------------------------------------------------

#[test]
fn toml_round_trips_every_value_shape() {
    let text = "\
top = 1\n\
[paper]\n\
nodes = 4_608 # Summit\n\
power_mw = 13.0\n\
peak = 2.0e2\n\
name = \"summit\"\n\
active = true\n\
[paper.sub]\n\
deep = -3\n";
    let entries = toml_lite::parse(text).unwrap();
    let view: Vec<(&str, &str, toml_lite::Value)> = entries
        .iter()
        .map(|e| (e.section.as_str(), e.key.as_str(), e.value.clone()))
        .collect();
    assert_eq!(
        view,
        vec![
            ("", "top", toml_lite::Value::Int(1)),
            ("paper", "nodes", toml_lite::Value::Int(4608)),
            ("paper", "power_mw", toml_lite::Value::Float(13.0)),
            ("paper", "peak", toml_lite::Value::Float(200.0)),
            ("paper", "name", toml_lite::Value::Str("summit".into())),
            ("paper", "active", toml_lite::Value::Bool(true)),
            ("paper.sub", "deep", toml_lite::Value::Int(-3)),
        ]
    );
    // Line numbers point at the source (comments and headers counted).
    assert_eq!(entries[0].line, 1);
    assert_eq!(entries[1].line, 3);
    assert_eq!(entries.last().unwrap().line, 9);
}

#[test]
fn toml_rejects_malformed_input() {
    assert!(toml_lite::parse("no_equals_sign").is_err());
    assert!(toml_lite::parse("[unclosed\nk = 1").is_err());
    assert!(
        toml_lite::parse("k = [1, 2]").is_err(),
        "arrays unsupported"
    );
    assert!(toml_lite::parse("k = 'single'").is_err(), "single quotes");
}

#[test]
fn toml_value_views() {
    let entries = toml_lite::parse("i = 2\nf = 2.5\ns = \"x\"").unwrap();
    assert_eq!(entries[0].value.as_f64(), Some(2.0));
    assert!(entries[0].value.is_integral());
    assert_eq!(entries[1].value.as_f64(), Some(2.5));
    assert!(!entries[1].value.is_integral());
    assert_eq!(entries[2].value.as_f64(), None);
}
